"""Command-line interface: ``ccmatic <command>``.

Commands:

* ``synthesize`` — run the CEGIS loop on one of the paper's search spaces;
* ``verify``     — verify a named CCA (rocc, eq3, const:<gamma>);
* ``sweep``      — count solutions across utilization/delay thresholds;
* ``simulate``   — run CCAs on the discrete-time simulator;
* ``assumption`` — synthesize the weakest sufficient environment
  assumption for a CCA;
* ``report``     — per-phase breakdown of a JSONL trace (worker lanes,
  cache and certify attribution; ``--perfetto out.json`` additionally
  exports a Chrome/Perfetto ``trace_event`` file with one lane per
  worker);
* ``bench-diff`` — gate a fresh ``engine_bench`` report against the
  committed ``BENCH_engine.json`` trajectory (nonzero exit beyond
  ``--max-regress``);
* ``resume``     — continue a synthesis run from its ``--checkpoint``
  file after a crash or kill (``--from-backup`` recovers from a
  corrupt latest checkpoint);
* ``certify``    — verify named CCAs with proof production on: every
  UNSAT verdict carries a DRAT+Farkas certificate replayed by the
  independent checker (:mod:`repro.trust`);
* ``serve``      — run the synthesis-as-a-service control plane
  (:mod:`repro.service`): an HTTP/JSON endpoint with a durable job
  queue, a persistent worker pool and a service-wide query cache;
* ``submit``     — build the same :class:`~repro.service.jobs.JobSpec`
  the local commands execute and send it to a running control plane
  (``submit synthesize|verify|falsify ...``);
* ``status``     — one job's lifecycle record; ``--watch`` streams its
  NDJSON progress until it finishes;
* ``result``     — fetch a finished job's payload and render it exactly
  as the local command would (same printers, same exit codes).

``synthesize``, ``verify`` and ``falsify`` all build a serializable
:class:`~repro.service.jobs.JobSpec` and run it through
:func:`~repro.service.jobs.execute_job` — the same path the server
takes — so a local run and a submitted run are the same computation
with a different transport.

``synthesize`` runs under the fault-tolerant runtime
(:mod:`repro.runtime`): ``--checkpoint`` persists crash-safe state every
iteration, ``--isolate`` runs solver calls in resource-capped workers
(``--solver-timeout``, ``--solver-mem-mb``), and degradations are
reported at the end of the run.

Global observability flags (accepted before or after the subcommand):

* ``--trace PATH``  — write a structured JSONL trace of the run
  (spans, events, and a final metrics snapshot);
* ``--log-level {quiet,info,debug}`` — live console rendering of events
  (``info``) and span timings (``debug``).

A flight recorder (bounded ring buffer of the most recent trace
records) is always on: a :class:`SoundnessError`, an exhausted worker
escalation, or an unhandled crash dumps ``flightrec-*.jsonl`` next to
the checkpoint (or into the working directory) for post-mortem
``ccmatic report``.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from . import __version__
from .ccac import ModelConfig
from .cegis import PruningMode
from .obs import DEBUG, INFO, ConsoleSink, JsonlSink, metrics, tracer
from .obs.report import report as render_trace_report
from .core import (
    CandidateCCA,
    CcacVerifier,
    SynthesisQuery,
    classify,
    constant_cwnd,
    paper_eq_iii,
    rocc,
    synthesize,
    table1_spaces,
    total_waste_budget,
    weakest_sufficient_assumption,
)


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer, friendly error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: strictly positive float, friendly error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive (got {value})")
    return value


def _readable_file(text: str) -> str:
    """argparse type: an existing, readable file, friendly error."""
    import os

    if not os.path.isfile(text):
        raise argparse.ArgumentTypeError(f"no such file: {text}")
    if not os.access(text, os.R_OK):
        raise argparse.ArgumentTypeError(f"file is not readable: {text}")
    return text


def _named_cca(name: str) -> CandidateCCA:
    if name == "rocc":
        return rocc()
    if name == "eq3":
        return paper_eq_iii()
    if name.startswith("const:"):
        return constant_cwnd(Fraction(name.split(":", 1)[1]))
    raise SystemExit(f"unknown CCA {name!r}; use rocc, eq3, or const:<gamma>")


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("fault tolerance")
    g.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="persist crash-safe state to PATH every iteration "
             "(continue later with `ccmatic resume PATH`)",
    )
    g.add_argument(
        "--isolate", action="store_true",
        help="run each solver call in an isolated, resource-capped worker",
    )
    g.add_argument(
        "--solver-timeout", type=_positive_float, default=60.0,
        metavar="SECONDS", help="per-call wall-clock cap for --isolate workers",
    )
    g.add_argument(
        "--solver-mem-mb", type=_positive_int, default=None,
        metavar="MIB", help="per-worker memory cap for --isolate workers",
    )
    g.add_argument(
        "--cross-check", action="store_true",
        help="advisory: replay each solution on the discrete simulator",
    )
    g.add_argument(
        "--falsify", type=_positive_int, default=0, metavar="BUDGET",
        help="adversarially falsify every solution with a genetic trace "
             "search of BUDGET evaluations; an in-fragment violation of "
             "a verified solution is a soundness error",
    )
    g.add_argument(
        "--falsify-seed", type=int, default=0, metavar="SEED",
        help="seed of the --falsify search (runs are replayable)",
    )
    g.add_argument(
        "--certify", action="store_true",
        help="produce and independently check an UNSAT proof for every "
             "verified verdict (DRAT + Farkas certificates; see "
             "`ccmatic certify` for the standalone workload)",
    )
    g = p.add_argument_group("performance")
    g.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="portfolio width: verify N candidates concurrently in "
             "isolated workers; the first conclusive verdict wins the "
             "round (default: 1, sequential)",
    )
    g.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="content-addressed query cache shared across runs and "
             "portfolio workers (conclusive verdicts only)",
    )
    g.add_argument(
        "--incremental", action="store_true",
        help="keep one incremental solver session across verifier calls "
             "(in-process verifier only; implied off under --isolate/--jobs)",
    )
    _add_pipeline_arg(g)


def _environment_arg(text: str):
    """argparse type: one cell of the CCAC environment matrix."""
    from .ccac.environments import parse_environment

    try:
        return parse_environment(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_env_arg(p) -> None:
    p.add_argument(
        "--env", action="append", type=_environment_arg, default=None,
        dest="environments", metavar="NAME[:k=v,...]",
        help="a cell of the CCAC environment matrix to verify against "
             "(repeatable): lossless | lossy:buffer=<frac> | "
             "multiflow:min_share=<frac> | jitter:jitter=<int> | "
             "thresholds:util_thresh=<frac>.  With several, a candidate "
             "counts as verified only when every environment agrees "
             "(default: lossless)",
    )


def _add_pipeline_arg(p) -> None:
    p.add_argument(
        "--no-compile-pipeline", action="store_true",
        help="escape hatch: skip the staged compile pipeline and encode "
             "raw preprocessed terms (slower; for debugging/benchmarks)",
    )


def _add_cfg_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--T", type=int, default=7, help="trace length (timesteps)")
    p.add_argument("--util", type=Fraction, default=Fraction(1, 2), help="utilization threshold")
    p.add_argument("--delay", type=Fraction, default=Fraction(4), help="delay threshold (RTTs)")


def _add_synthesize_args(p: argparse.ArgumentParser) -> None:
    """The synthesize job surface — shared verbatim by ``synthesize``
    (local) and ``submit synthesize`` (remote), so both build the exact
    same :class:`~repro.service.jobs.JobSpec`."""
    p.add_argument("--space", choices=list(table1_spaces()), default="no_cwnd_small")
    p.add_argument("--pruning", choices=["exact", "range"], default="range")
    p.add_argument("--wce", action="store_true", help="worst-case counterexamples")
    p.add_argument("--generator", choices=["smt", "enum"], default="enum")
    p.add_argument("--all", action="store_true", help="enumerate all solutions")
    p.add_argument("--max-iterations", type=_positive_int, default=100000)
    p.add_argument("--time-budget", type=_positive_float, default=None)
    p.add_argument("--verbose", action="store_true")
    _add_cfg_args(p)
    _add_env_arg(p)
    _add_runtime_args(p)


def _add_verify_args(p: argparse.ArgumentParser) -> None:
    """The verify job surface — shared by ``verify`` and
    ``submit verify``."""
    p.add_argument("cca", help="rocc | eq3 | const:<gamma>")
    p.add_argument("--wce", action="store_true")
    p.add_argument("--certify", action="store_true",
                   help="independently check an UNSAT proof of the verdict")
    p.add_argument("--falsify", type=_positive_int, default=0,
                   metavar="BUDGET",
                   help="after a VERIFIED verdict, hunt it with a genetic "
                        "trace search of BUDGET evaluations; an "
                        "in-fragment violation is a soundness error")
    p.add_argument("--falsify-seed", type=int, default=0, metavar="SEED")
    _add_cfg_args(p)
    _add_env_arg(p)
    _add_pipeline_arg(p)


def _add_falsify_job_args(p: argparse.ArgumentParser) -> None:
    """The falsify *job* surface (one CCA, no repo-local corpus/grid
    flags) — ``submit falsify``'s arguments."""
    p.add_argument("cca",
                   help="CCA to attack: rocc | eq3 | const:<cwnd> | "
                        "aimd[:<delay-thresh>] | cubic[:<delay-thresh>] | "
                        "vegas | copa | rocc-native")
    p.add_argument("--seed", type=int, default=0,
                   help="search seed; identical seeds replay bit-for-bit")
    p.add_argument("--budget", type=_positive_int, default=600,
                   metavar="EVALS",
                   help="trace evaluations to spend (default: %(default)s)")
    p.add_argument("--population", type=_positive_int, default=16,
                   help="genetic population size (default: %(default)s)")
    p.add_argument("--ticks", type=_positive_int, default=120,
                   help="target schedule length in RTTs (default: %(default)s)")
    p.add_argument("--beyond", action="store_true",
                   help="search beyond the SMT model fragment")
    p.add_argument("--exhaustive", action="store_true",
                   help="spend the whole budget instead of stopping at the "
                        "first violation")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the SMT verdict lookup before the hunt")
    _add_cfg_args(p)


def _add_service_args(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("control plane")
    g.add_argument("--host", default="127.0.0.1",
                   help="control plane host (default: %(default)s)")
    g.add_argument("--port", type=int, default=8736,
                   help="control plane port (default: %(default)s)")


def _cfg(args) -> ModelConfig:
    return ModelConfig(T=args.T, util_thresh=args.util, delay_thresh=args.delay)


def _runtime_options(args):
    from .runtime import RuntimeOptions

    return RuntimeOptions(
        checkpoint_path=getattr(args, "checkpoint", None),
        isolate=getattr(args, "isolate", False),
        solver_timeout=getattr(args, "solver_timeout", 60.0),
        solver_mem_mb=getattr(args, "solver_mem_mb", None),
        cross_check=getattr(args, "cross_check", False),
        cache_dir=getattr(args, "cache_dir", None),
        incremental=getattr(args, "incremental", False),
        certify=getattr(args, "certify", False),
        falsify=getattr(args, "falsify", 0),
        falsify_seed=getattr(args, "falsify_seed", 0),
    )


def _print_synthesis_result(result, cfg) -> int:
    reason = result.stop_reason.value if result.stop_reason else "?"
    print(
        f"iterations={result.iterations} counterexamples={result.counterexamples} "
        f"wall={result.wall_time:.1f}s exhausted={result.exhausted} "
        f"stop={reason}{' (resumed)' if result.resumed else ''}"
    )
    if result.degradations:
        kinds = ", ".join(sorted({d.get("kind", "?") for d in result.degradations}))
        print(f"degraded: {len(result.degradations)} event(s) [{kinds}]")
    if result.certified_verdicts:
        print(f"certified: {result.certified_verdicts} verified verdict(s) "
              f"carry independently checked UNSAT proofs")
    if not result.solutions:
        print("no solution found")
        # None = cross-checking never requested; [] = requested but the
        # run had no solutions to check — say so rather than staying mute
        if result.cross_checks == []:
            print("cross-check: requested but no solutions to check")
        return 1
    for cand in result.solutions:
        report = classify(cand, cfg)
        tag = "RoCC-family" if report.rocc_family else "other"
        print(f"  {report.rule}   [{tag}, {report.history_used} RTTs of history]")
    for check in result.cross_checks or ():
        print(f"  {check.describe()}")
    if result.falsification_attempts:
        print(
            f"falsified: {result.falsification_survivals}/"
            f"{len(result.solutions)} solution(s) survived "
            f"{result.falsification_attempts} adversarial trace "
            f"evaluation(s)"
        )
    return 0


def _synthesis_query(args) -> SynthesisQuery:
    spaces = table1_spaces()
    spec = spaces[args.space]
    return SynthesisQuery(
        spec=spec,
        cfg=_cfg(args),
        pruning=PruningMode.EXACT if args.pruning == "exact" else PruningMode.RANGE,
        worst_case_cex=args.wce,
        generator=args.generator,
        find_all=args.all,
        max_iterations=args.max_iterations,
        time_budget=args.time_budget,
        verbose=args.verbose,
        jobs=args.jobs or 1,
        environments=getattr(args, "environments", None),
    )


def cmd_synthesize(args) -> int:
    from .service.jobs import (
        decode_synthesis_result,
        execute_job,
        synthesis_spec,
    )

    query = _synthesis_query(args)
    spec = synthesis_spec(query, _runtime_options(args))
    payload = execute_job(
        spec, checkpoint_path=getattr(args, "checkpoint", None)
    )
    return _print_synthesis_result(decode_synthesis_result(payload), query.cfg)


def cmd_resume(args) -> int:
    import os

    from .runtime import CheckpointError, resume_synthesis

    try:
        result = resume_synthesis(
            args.checkpoint_file,
            _runtime_options(args),
            time_budget=args.time_budget,
            max_iterations=args.max_iterations,
            jobs=args.jobs,
            from_backup=args.from_backup,
        )
    except CheckpointError as exc:
        msg = f"cannot resume: {exc}"
        if not args.from_backup and os.path.exists(args.checkpoint_file + ".bak"):
            msg += "\na backup checkpoint exists; retry with --from-backup"
        raise SystemExit(msg)
    return _print_synthesis_result(result, result.query.cfg)


def _describe_certificate(summary) -> str:
    """Renders a certificate summary — the live object or its payload
    dict (a service result round-tripped through JSON)."""
    if not isinstance(summary, dict):
        summary = {
            "steps": summary.steps,
            "inputs": summary.inputs,
            "rup_additions": summary.rup_additions,
            "theory_lemmas": summary.theory_lemmas,
            "check_time": summary.check_time,
        }
    return (
        f"proof checked: {summary['steps']} steps "
        f"({summary['inputs']} inputs, "
        f"{summary['rup_additions']} RUP additions, "
        f"{summary['theory_lemmas']} Farkas lemmas) "
        f"in {summary['check_time']:.2f}s"
    )


def _render_verify_payload(payload: dict, certify: bool = False) -> int:
    """Print a verify job's result payload; local and remote runs share
    this renderer (and therefore the exact same output and exit codes)."""
    print(payload["pretty"])
    if payload["verified"]:
        print(f"VERIFIED in {payload['wall_time']:.2f}s "
              f"(no admissible trace violates the property)")
        if payload.get("certified") and payload.get("certificate"):
            print(_describe_certificate(payload["certificate"]))
        elif certify:
            print("NOT CERTIFIED (verdict inconclusive in proof mode)")
            return 2
        if payload.get("falsify"):
            print(f"falsify: {payload['falsify']}")
        return 0
    env = payload.get("environment")
    where = f" [environment: {env}]" if env else ""
    print(f"COUNTEREXAMPLE in {payload['wall_time']:.2f}s{where}:")
    print(payload["counterexample_text"])
    return 1


def cmd_verify(args) -> int:
    from .service.jobs import JobSpecError, execute_job, verify_spec

    certify = getattr(args, "certify", False)
    spec = verify_spec(
        args.cca,
        _cfg(args),
        worst_case=args.wce,
        certify=certify,
        falsify=getattr(args, "falsify", 0),
        falsify_seed=getattr(args, "falsify_seed", 0),
        environments=getattr(args, "environments", None),
    )
    try:
        payload = execute_job(spec)
    except JobSpecError as exc:
        raise SystemExit(str(exc))
    return _render_verify_payload(payload, certify=certify)


def cmd_certify(args) -> int:
    """The standard certification workload: verify named CCAs with proof
    production on; every UNSAT verdict must survive the independent
    checker.  Exit 0 only when each CCA reached a conclusive verdict and
    every verified one carries a checked certificate."""
    failures = 0
    for name in args.ccas:
        cand = _named_cca(name)
        verifier = CcacVerifier(_cfg(args), certify=True)
        res = verifier.find_counterexample(cand, worst_case=args.wce)
        print(f"{name}: {cand.pretty()}")
        if res.verified:
            if res.certified:
                print(f"  CERTIFIED in {res.wall_time:.2f}s; "
                      f"{_describe_certificate(res.certificate)}")
            else:
                print(f"  VERIFIED but NOT CERTIFIED in {res.wall_time:.2f}s")
                failures += 1
        elif res.counterexample is not None:
            print(f"  COUNTEREXAMPLE in {res.wall_time:.2f}s "
                  f"(nothing to certify; trace independently validated)")
        else:
            print(f"  UNKNOWN in {res.wall_time:.2f}s")
            failures += 1
    return 0 if failures == 0 else 1


def _render_falsify_payload(payload: dict) -> int:
    """Print a falsify job's result payload (shared local/remote);
    returns 0 when the CCA survived, 1 when it was falsified."""
    name = payload["cca"]
    verdict = payload.get("smt_verdict")
    if verdict == "verified":
        print(f"{name}: SMT-verified — an in-fragment violation "
              f"now counts as a soundness error")
    elif verdict == "counterexample":
        print(f"{name}: SMT found a counterexample; falsification "
              f"is corroboration, not contradiction")
    elif verdict == "unknown":
        print(f"{name}: SMT verdict unknown")
    print(payload["description"])
    return 0 if payload["survived"] else 1


def cmd_falsify(args) -> int:
    """Adversarial falsification: hunt a CCA's property with a seeded
    genetic trace search (and optionally a cross-validation grid).

    Exit 0 when every CCA survived its budget, 1 when any was falsified.
    A sim-vs-SMT disagreement (in-fragment violation of a verified CCA)
    raises :class:`~repro.runtime.errors.SoundnessError` after dumping
    flight state and committing the minimized corpus case.
    """
    from .falsify import GridSpec, run_grid
    from .service.jobs import execute_job, falsify_spec

    cfg = _cfg(args)
    falsified = 0
    for spec in args.ccas:
        job = falsify_spec(
            spec,
            cfg,
            budget=args.budget,
            seed=args.seed,
            ticks=args.ticks,
            population=args.population,
            beyond=args.beyond,
            exhaustive=args.exhaustive,
            no_verify=args.no_verify,
        )
        try:
            payload = execute_job(
                job,
                corpus_dir=args.corpus_dir,
                write_corpus=not args.no_corpus,
            )
        except ValueError as exc:
            # unknown CCA spec (resolve_cca) or a malformed job
            raise SystemExit(str(exc))
        if _render_falsify_payload(payload):
            falsified += 1
        if args.grid:
            manifest_path = None
            if args.manifest:
                manifest_path = args.manifest
                if len(args.ccas) > 1:
                    import os
                    import re

                    root, ext = os.path.splitext(args.manifest)
                    slug = re.sub(r"[^a-z0-9]+", "-", spec.lower()).strip("-")
                    manifest_path = f"{root}-{slug}{ext or '.json'}"
            buffers = ()
            if args.grid_buffers:
                from fractions import Fraction

                try:
                    buffers = tuple(
                        Fraction(b) for b in args.grid_buffers.split(",")
                    )
                except (ValueError, ZeroDivisionError):
                    raise SystemExit(
                        f"--grid-buffers: cannot parse {args.grid_buffers!r}"
                    )
            manifest = run_grid(
                spec, cfg,
                GridSpec.from_model(cfg, ticks=args.ticks, buffers=buffers),
                jobs=args.grid_jobs, manifest_path=manifest_path,
            )
            print(f"{spec} grid: {manifest.describe()}"
                  + (f" -> {manifest_path}" if manifest_path else ""))
    return 1 if falsified else 0


def cmd_serve(args) -> int:
    """Run the control plane until shutdown (POST /shutdown or Ctrl-C)."""
    from .service import ServiceConfig, run_server

    run_server(ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        pool_size=args.pool_size,
        memory_mb=args.solver_mem_mb,
        max_cache_mb=args.max_cache_mb,
        max_tasks_per_worker=args.max_tasks_per_worker,
        executors=args.executors,
        max_queue=args.max_queue,
        drain_grace=args.drain_grace,
        probe_timeout=args.probe_timeout,
        prime_timeout=args.prime_timeout,
    ))
    return 0


def _service_client(args, stream: bool = False):
    from .service import ServiceClient

    # watch/stream paths block on a quiet NDJSON socket between events,
    # so they must not carry the short control-call timeout
    return ServiceClient(
        args.host, args.port, timeout=None if stream else 30.0
    )


def _spec_from_args(args):
    """The submit half of the shared job API: build exactly the spec the
    local command would execute."""
    from .service.jobs import falsify_spec, synthesis_spec, verify_spec

    kind = args.job_kind
    limits = {
        "max_attempts": getattr(args, "max_attempts", None),
        "deadline_s": getattr(args, "deadline_s", None),
    }
    if kind == "synthesize":
        return synthesis_spec(
            _synthesis_query(args), _runtime_options(args), **limits
        )
    if kind == "verify":
        return verify_spec(
            args.cca,
            _cfg(args),
            worst_case=args.wce,
            certify=args.certify,
            falsify=args.falsify,
            falsify_seed=args.falsify_seed,
            environments=getattr(args, "environments", None),
            **limits,
        )
    return falsify_spec(
        args.cca,
        _cfg(args),
        budget=args.budget,
        seed=args.seed,
        ticks=args.ticks,
        population=args.population,
        beyond=args.beyond,
        exhaustive=args.exhaustive,
        no_verify=args.no_verify,
        **limits,
    )


def _render_stream_record(record: dict) -> None:
    """One line per NDJSON progress record (``status --watch``)."""
    rtype = record.get("type")
    if rtype == "job":
        line = f"[job] state={record.get('state')}"
        if record.get("error"):
            line += f"  error={record['error']}"
        print(line, flush=True)
    elif rtype == "event":
        msg = record.get("msg") or record.get("name", "?")
        print(f"  {msg}", flush=True)
    elif rtype == "span":
        print(f"  {record.get('name')} {float(record.get('dur') or 0):.3f}s",
              flush=True)
    # metrics/meta records are noise in a live stream


_TERMINAL_STATES = ("done", "failed", "cancelled")


def _watch_job(client, job_id: str) -> None:
    for record in client.events(job_id):
        _render_stream_record(record)
        if record.get("type") == "job" and \
                record.get("state") in _TERMINAL_STATES:
            return


def _render_result(client, job_id: str) -> int:
    """Fetch a finished job and render it with the *local* printers —
    ``ccmatic result`` and the local command produce identical output
    and exit codes for the same spec."""
    from .service import ServiceError
    from .service.jobs import JobSpecError, decode_synthesis_result

    try:
        record = client.status(job_id)
        payload = client.result(job_id)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot reach {client.host}:{client.port}: {exc}")
    kind = record.get("kind")
    if kind == "synthesize":
        try:
            result = decode_synthesis_result(payload)
        except JobSpecError as exc:
            raise SystemExit(str(exc))
        return _print_synthesis_result(result, result.query.cfg)
    if kind == "verify":
        certify = bool(
            record.get("spec", {}).get("params", {}).get("certify")
        )
        return _render_verify_payload(payload, certify=certify)
    return _render_falsify_payload(payload)


def cmd_submit(args) -> int:
    from .service import ServiceError

    try:
        spec = _spec_from_args(args)
    except ValueError as exc:
        raise SystemExit(str(exc))
    client = _service_client(args)
    try:
        accepted = client.submit(spec)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(
            f"cannot reach a control plane at {args.host}:{args.port} "
            f"({exc}); start one with `ccmatic serve`"
        )
    job_id = accepted["job_id"]
    print(f"submitted {job_id} ({spec.kind}) "
          f"spec={accepted.get('spec_fingerprint', '?')[:16]}")
    if not args.watch:
        print(f"follow with: ccmatic status {job_id} --watch; "
              f"fetch with: ccmatic result {job_id}")
        return 0
    watcher = _service_client(args, stream=True)
    _watch_job(watcher, job_id)
    return _render_result(client, job_id)


def cmd_status(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        if args.job_id is None:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
                return 0
            for record in sorted(
                jobs, key=lambda r: r.get("submitted_at") or 0
            ):
                print(f"{record['job_id']}  {record['kind']:10s} "
                      f"{record['state']}")
            return 0
        record = client.status(args.job_id)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.host}:{args.port}: {exc}")
    print(f"{record['job_id']}  {record['kind']}  state={record['state']}  "
          f"spec={record.get('spec_fingerprint', '?')[:16]}")
    if record.get("error"):
        print(f"  error: {record['error']}")
    if args.watch and record["state"] not in _TERMINAL_STATES:
        watcher = _service_client(args, stream=True)
        _watch_job(watcher, args.job_id)
        record = client.status(args.job_id)
        print(f"[job] final state={record['state']}")
    return 1 if record["state"] == "failed" else 0


def cmd_result(args) -> int:
    return _render_result(_service_client(args), args.job_id)


def cmd_sweep(args) -> int:
    from .core import enumerate_all

    spec = table1_spaces()[args.space]
    values = [Fraction(v) for v in args.values.split(",")]
    for v in values:
        if args.kind == "util":
            cfg = ModelConfig(T=args.T, util_thresh=v)
        else:
            cfg = ModelConfig(T=args.T, delay_thresh=v)
        query = SynthesisQuery(
            spec=spec, cfg=cfg, generator="enum", find_all=True,
            time_budget=args.time_budget,
        )
        result = enumerate_all(query)
        print(f"{args.kind}={v}: {len(result.solutions)} solutions"
              f"{' (budget hit)' if result.timed_out else ''}")
    return 0


def cmd_simulate(args) -> int:
    from .ccas import AIMD, ConstantCwnd, CubicLike, RoCC, TemplateCCA
    from .sim import run_simulation

    ccas = {
        "rocc": RoCC(),
        "aimd": AIMD(),
        "cubic": CubicLike(),
        "const1": ConstantCwnd(Fraction(1)),
    }
    for name, cca in ccas.items():
        for policy in ("ideal", "lazy", "max_waste"):
            r = run_simulation(cca, ticks=args.ticks, policy=policy)
            print(
                f"{name:8s} {policy:10s} util={float(r.utilization(10)):.3f} "
                f"max_queue={float(r.max_queue(10)):.2f}"
            )
    return 0


def cmd_assumption(args) -> int:
    cand = _named_cca(args.cca)
    cfg = _cfg(args)
    result = weakest_sufficient_assumption(cand, cfg, total_waste_budget(cfg))
    print(f"{cand.pretty()}")
    if not result.found:
        print("no sufficient assumption in the family")
        return 1
    print(f"weakest sufficient assumption ({result.probes} probes, "
          f"{result.wall_time:.1f}s):")
    print(f"  {result.assumption}")
    return 0


def cmd_report(args) -> int:
    try:
        print(render_trace_report(args.trace_file))
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.trace_file!r}: {exc}")
    cache_dir = getattr(args, "report_cache_dir", None)
    if cache_dir:
        from .obs.report import render_cache_stats

        print()
        print(render_cache_stats(cache_dir))
    perfetto = getattr(args, "perfetto", None)
    if perfetto:
        from .obs.export import export_perfetto

        try:
            info = export_perfetto(args.trace_file, perfetto)
        except OSError as exc:
            raise SystemExit(f"cannot write perfetto export: {exc}")
        print(
            f"\nperfetto export: {perfetto} ({info['spans']} spans, "
            f"{info['lanes']} lanes; open at https://ui.perfetto.dev)"
        )
    return 0


def cmd_bench_diff(args) -> int:
    """Diff a fresh engine_bench report against the committed trajectory."""
    import json

    from .obs.trajectory import latest_comparable, load_history, regressions

    try:
        with open(args.current, "r", encoding="utf-8") as f:
            report = json.load(f)
    except ValueError as exc:
        raise SystemExit(f"cannot parse bench report {args.current!r}: {exc}")
    try:
        trajectory = load_history(args.baseline)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load baseline {args.baseline!r}: {exc}")
    baseline = latest_comparable(trajectory, report.get("quick"))
    if baseline is None:
        print(f"no baseline history in {args.baseline}; nothing to diff")
        return 0
    failures, rows = regressions(report, baseline, args.max_regress)
    print(
        f"bench-diff: {args.current} vs {args.baseline} "
        f"(baseline sha {baseline.get('git_sha', '?')}, "
        f"gate {args.max_regress:.0f}%)"
    )
    for row in rows:
        if row["kind"] == "timing":
            print(
                f"  {row['metric']:28s} {row['baseline']:9.3f}s -> "
                f"{row['current']:9.3f}s  {row['delta_pct']:+7.1f}%"
            )
        else:
            base = f"{row['baseline']:.2f}x" if row["baseline"] else "?"
            print(
                f"  {row['metric']:28s} {base:>10s} -> "
                f"{row['current']:9.2f}x"
            )
    if failures:
        names = ", ".join(f["metric"] for f in failures)
        print(f"REGRESSION: {len(failures)} gate(s) breached [{names}]")
        return 1
    print("ok: within the regression gate")
    return 0


def _obs_parent() -> argparse.ArgumentParser:
    """Global observability flags, shared by the root parser and every
    subcommand so they work in either position (``ccmatic --trace f sub``
    and ``ccmatic sub --trace f``).  SUPPRESS defaults keep the
    subparser from clobbering a value parsed at the root."""
    p = argparse.ArgumentParser(add_help=False)
    g = p.add_argument_group("observability")
    g.add_argument(
        "--trace", metavar="PATH", default=argparse.SUPPRESS,
        help="write a JSONL trace of the run to PATH",
    )
    g.add_argument(
        "--log-level", choices=["quiet", "info", "debug"],
        default=argparse.SUPPRESS,
        help="live console event rendering (default: quiet)",
    )
    return p


def build_parser() -> argparse.ArgumentParser:
    obs = _obs_parent()
    parser = argparse.ArgumentParser(
        prog="ccmatic", description=__doc__, parents=[obs]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="run CEGIS synthesis", parents=[obs])
    _add_synthesize_args(p)
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser("verify", help="verify a named CCA", parents=[obs])
    _add_verify_args(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "falsify",
        help="adversarial falsification: genetic trace search + grids",
        parents=[obs],
    )
    p.add_argument("ccas", nargs="+",
                   help="CCAs to attack: rocc | eq3 | const:<cwnd> | "
                        "aimd[:<delay-thresh>] | cubic[:<delay-thresh>] | "
                        "vegas | copa | rocc-native (aimd:8 is the "
                        "deliberately weakened demo)")
    p.add_argument("--seed", type=int, default=0,
                   help="search seed; identical seeds replay bit-for-bit")
    p.add_argument("--budget", type=_positive_int, default=600,
                   metavar="EVALS",
                   help="trace evaluations to spend (default: %(default)s)")
    p.add_argument("--population", type=_positive_int, default=16,
                   help="genetic population size (default: %(default)s)")
    p.add_argument("--ticks", type=_positive_int, default=120,
                   help="target schedule length in RTTs (default: %(default)s)")
    p.add_argument("--beyond", action="store_true",
                   help="search beyond the SMT model fragment (rate steps, "
                        "outages, jitter bursts); violations are model-gap "
                        "findings, never soundness errors")
    p.add_argument("--exhaustive", action="store_true",
                   help="spend the whole budget instead of stopping at the "
                        "first violation")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the SMT verdict lookup before the hunt")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not write minimized violations into the corpus")
    p.add_argument("--corpus-dir", metavar="PATH", default=None,
                   help="corpus directory (default: tests/corpus/cases)")
    p.add_argument("--grid", action="store_true",
                   help="additionally sweep a link-condition grid across "
                        "worker processes")
    p.add_argument("--grid-jobs", type=_positive_int, default=2, metavar="N",
                   help="grid worker processes (default: %(default)s)")
    p.add_argument("--grid-buffers", metavar="B1,B2,...", default=None,
                   help="also sweep lossy drop-tail cells at these buffer "
                        "sizes (fractions, e.g. 2,8); lossless cells always "
                        "run")
    p.add_argument("--manifest", metavar="PATH", default=None,
                   help="write the grid's experiment manifest JSON to PATH")
    _add_cfg_args(p)
    _add_pipeline_arg(p)
    p.set_defaults(func=cmd_falsify)

    p = sub.add_parser(
        "certify",
        help="verify named CCAs with independently checked UNSAT proofs",
        parents=[obs],
    )
    p.add_argument("ccas", nargs="*", default=["rocc", "eq3"],
                   help="CCAs to certify (default: rocc eq3); "
                        "rocc | eq3 | const:<gamma>")
    p.add_argument("--wce", action="store_true",
                   help="certify under worst-case counterexample search")
    _add_cfg_args(p)
    _add_pipeline_arg(p)
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser("sweep", help="solution counts vs thresholds", parents=[obs])
    p.add_argument("kind", choices=["util", "delay"])
    p.add_argument("--values", default="1/2,13/20,7/10")
    p.add_argument("--space", choices=list(table1_spaces()), default="no_cwnd_small")
    p.add_argument("--T", type=int, default=7)
    p.add_argument("--time-budget", type=float, default=None)
    _add_pipeline_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("simulate", help="run CCAs on the simulator", parents=[obs])
    p.add_argument("--ticks", type=int, default=100)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("assumption", help="weakest sufficient assumption", parents=[obs])
    p.add_argument("cca", help="rocc | eq3 | const:<gamma>")
    _add_cfg_args(p)
    _add_pipeline_arg(p)
    p.set_defaults(func=cmd_assumption)

    p = sub.add_parser("report", help="per-phase breakdown of a JSONL trace")
    p.add_argument("trace_file", type=_readable_file,
                   help="trace captured with --trace (or a flight-recorder "
                        "dump)")
    p.add_argument("--perfetto", metavar="PATH", default=None,
                   help="additionally export a Chrome/Perfetto trace_event "
                        "JSON with one lane per worker")
    p.add_argument("--cache-dir", dest="report_cache_dir", metavar="PATH",
                   default=None,
                   help="also show the persisted counters of a shared "
                        "query-cache directory")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench-diff",
        help="gate an engine_bench report against the committed trajectory",
    )
    p.add_argument("current", type=_readable_file,
                   help="fresh engine_bench report JSON")
    p.add_argument("--baseline", default="BENCH_engine.json", metavar="PATH",
                   help="committed trajectory to diff against "
                        "(default: %(default)s)")
    p.add_argument("--max-regress", type=_positive_float, default=25.0,
                   metavar="PCT",
                   help="fail when a tracked timing regresses more than "
                        "PCT%% (default: %(default)s)")
    p.set_defaults(func=cmd_bench_diff)

    p = sub.add_parser(
        "resume", help="continue a checkpointed synthesis run", parents=[obs]
    )
    p.add_argument("checkpoint_file", type=_readable_file,
                   help="checkpoint written by `synthesize --checkpoint`")
    p.add_argument("--max-iterations", type=_positive_int, default=None,
                   help="override the stored iteration cap")
    p.add_argument("--time-budget", type=_positive_float, default=None,
                   help="fresh time budget for the resumed run")
    p.add_argument("--from-backup", action="store_true",
                   help="recover from a corrupt checkpoint: set it aside "
                        "and resume from the kept previous generation "
                        "(<file>.bak)")
    _add_runtime_args(p)
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "serve",
        help="run the synthesis-as-a-service control plane",
        parents=[obs],
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: %(default)s)")
    p.add_argument("--port", type=int, default=8736,
                   help="bind port; 0 picks an ephemeral port "
                        "(default: %(default)s)")
    p.add_argument("--state-dir", default=".ccmatic-service", metavar="DIR",
                   help="durable state root: job records, the shared "
                        "query cache, checkpoints (default: %(default)s)")
    p.add_argument("--pool-size", type=_positive_int, default=2, metavar="N",
                   help="persistent pooled workers (default: %(default)s)")
    p.add_argument("--solver-mem-mb", type=_positive_int, default=None,
                   metavar="MIB", help="per-worker memory cap")
    p.add_argument("--max-cache-mb", type=_positive_float, default=None,
                   metavar="MIB",
                   help="LRU-evict the shared query cache beyond this size")
    p.add_argument("--max-tasks-per-worker", type=_positive_int, default=64,
                   metavar="N",
                   help="recycle a pooled worker after N tasks "
                        "(default: %(default)s)")
    p.add_argument("--executors", type=_positive_int, default=2, metavar="N",
                   help="concurrent job executors over the shared pool "
                        "(default: %(default)s)")
    p.add_argument("--max-queue", type=_positive_int, default=64, metavar="N",
                   help="shed submits (429 + Retry-After) beyond this many "
                        "queued jobs (default: %(default)s)")
    p.add_argument("--drain-grace", type=_positive_float, default=30.0,
                   metavar="SECONDS",
                   help="on shutdown, let in-flight jobs finish this long "
                        "before re-queueing them (default: %(default)s)")
    p.add_argument("--probe-timeout", type=_positive_float, default=1.0,
                   metavar="SECONDS",
                   help="idle-worker heartbeat timeout; raise on slow CI "
                        "machines (default: %(default)s)")
    p.add_argument("--prime-timeout", type=_positive_float, default=60.0,
                   metavar="SECONDS",
                   help="worker warm-up call timeout (default: %(default)s)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a job to a running control plane",
        parents=[obs],
    )
    submit_sub = p.add_subparsers(dest="job_kind", required=True)
    for kind, add_args in (
        ("synthesize", _add_synthesize_args),
        ("verify", _add_verify_args),
        ("falsify", _add_falsify_job_args),
    ):
        ps = submit_sub.add_parser(
            kind, help=f"submit a {kind} job", parents=[obs]
        )
        add_args(ps)
        _add_service_args(ps)
        ps.add_argument("--watch", action="store_true",
                        help="stream progress and render the result "
                             "(exit code matches the local command)")
        ps.add_argument("--max-attempts", type=_positive_int, default=None,
                        metavar="N",
                        help="execution attempts before the server marks "
                             "the job failed (default: server policy)")
        ps.add_argument("--deadline-s", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="per-attempt wall-clock bound enforced by the "
                             "server watchdog (default: unbounded)")
        ps.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="job lifecycle on a control plane", parents=[obs]
    )
    p.add_argument("job_id", nargs="?", default=None,
                   help="job to inspect (omit to list every job)")
    p.add_argument("--watch", action="store_true",
                   help="stream NDJSON progress until the job finishes")
    _add_service_args(p)
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "result",
        help="fetch a finished job and render it like the local command",
        parents=[obs],
    )
    p.add_argument("job_id", help="a job in state done")
    _add_service_args(p)
    p.set_defaults(func=cmd_result)

    return parser


def _configure_observability(args, argv) -> list:
    """Attach the sinks requested by the global flags; returns them for
    teardown.  Also stamps the trace with run metadata."""
    tr = tracer()
    sinks = []
    trace_path = getattr(args, "trace", None)
    log_level = getattr(args, "log_level", "quiet")
    if trace_path:
        try:
            sinks.append(tr.add_sink(JsonlSink(trace_path)))
        except OSError as exc:
            print(f"cannot open trace file '{trace_path}': {exc}",
                  file=sys.stderr)
            raise SystemExit(1)
    if log_level != "quiet":
        level = INFO if log_level == "info" else DEBUG
        sinks.append(tr.add_sink(ConsoleSink(level=level)))
    if sinks:
        tr.meta(argv=list(argv) if argv is not None else sys.argv[1:],
                version=__version__)
    return sinks


def _configure_flight_recorder(args) -> None:
    """Arm the always-on flight recorder; dumps land next to the
    checkpoint when the run has one, else in the working directory."""
    import os

    from .obs import ensure_flight_recorder, set_dump_dir

    checkpoint = getattr(args, "checkpoint", None) or getattr(
        args, "checkpoint_file", None
    )
    dump_dir = os.path.dirname(os.path.abspath(checkpoint)) if checkpoint else "."
    set_dump_dir(dump_dir)
    ensure_flight_recorder()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_compile_pipeline", False):
        # set both the process override and the environment flag, so
        # forked/spawned portfolio workers inherit the escape hatch
        import os

        from .smt.compile import ENV_FLAG, set_pipeline_enabled

        os.environ[ENV_FLAG] = "1"
        set_pipeline_enabled(False)
    tr = tracer()
    _configure_flight_recorder(args)
    sinks = _configure_observability(args, argv)
    try:
        return args.func(args)
    except (SystemExit, KeyboardInterrupt, BrokenPipeError):
        # intentional exits are not crashes; a broken pipe just means
        # the consumer (e.g. `| head`) went away
        raise
    except BaseException:
        # the black box: an unhandled crash (including a SoundnessError
        # that escaped the runtime) dumps the last trace records before
        # the traceback reaches the user
        from .obs import dump_flight

        path = dump_flight("crash")
        if path:
            print(f"flight recorder dumped to {path}", file=sys.stderr)
        raise
    finally:
        if sinks:
            tr.emit_metrics(metrics().snapshot())
        for sink in sinks:
            tr.remove_sink(sink)
            sink.close()


if __name__ == "__main__":
    sys.exit(main())
