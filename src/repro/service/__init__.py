"""Synthesis-as-a-service: the control plane over the CEGIS engine.

The job-oriented API (:mod:`~repro.service.jobs`) makes every run — CLI
or HTTP — the same computation: a serializable, fingerprinted
:class:`JobSpec` executed by :func:`execute_job`.  Around it:

* :class:`WorkerPool` (:mod:`~repro.service.pool`) — persistent fork
  workers amortizing process boot, intern-table priming and incremental
  verifier state across batches; thread-safe lane leasing lets N
  executors share one pool;
* :class:`JobServer` (:mod:`~repro.service.server`) — the asyncio
  HTTP/JSON endpoint with a durable job queue, NDJSON progress streams
  and the service-wide query cache;
* :class:`ServiceClient` (:mod:`~repro.service.client`) — the blocking
  client behind ``ccmatic submit`` / ``status`` / ``result``, with
  full-jitter retries and cursor-resumable event streams;
* :mod:`~repro.service.resilience` — the overload-and-failure survival
  primitives (cancel scopes, job leases/attempts, retry policy) that
  the server, pool and client share.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    DEFAULT_MAX_ATTEMPTS,
    JOBRECORD_VERSION,
    JOBSPEC_VERSION,
    JobRecord,
    JobSpec,
    JobSpecError,
    decode_synthesis_result,
    encode_synthesis_result,
    execute_job,
    falsify_spec,
    synthesis_spec,
    verify_spec,
)
from .pool import PoolStats, WorkerPool
from .resilience import AttemptRecord, CancelScope, JobCancelled, RetryPolicy
from .server import JobServer, ServiceConfig, run_server

__all__ = [
    "AttemptRecord",
    "CancelScope",
    "DEFAULT_MAX_ATTEMPTS",
    "JOBRECORD_VERSION",
    "JOBSPEC_VERSION",
    "JobCancelled",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JobSpecError",
    "PoolStats",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "WorkerPool",
    "decode_synthesis_result",
    "encode_synthesis_result",
    "execute_job",
    "falsify_spec",
    "run_server",
    "synthesis_spec",
    "verify_spec",
]
