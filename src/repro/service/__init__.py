"""Synthesis-as-a-service: the control plane over the CEGIS engine.

The job-oriented API (:mod:`~repro.service.jobs`) makes every run — CLI
or HTTP — the same computation: a serializable, fingerprinted
:class:`JobSpec` executed by :func:`execute_job`.  Around it:

* :class:`WorkerPool` (:mod:`~repro.service.pool`) — persistent fork
  workers amortizing process boot, intern-table priming and incremental
  verifier state across batches;
* :class:`JobServer` (:mod:`~repro.service.server`) — the asyncio
  HTTP/JSON endpoint with a durable job queue, NDJSON progress streams
  and the service-wide query cache;
* :class:`ServiceClient` (:mod:`~repro.service.client`) — the blocking
  client behind ``ccmatic submit`` / ``status`` / ``result``.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    JOBSPEC_VERSION,
    JobRecord,
    JobSpec,
    JobSpecError,
    decode_synthesis_result,
    encode_synthesis_result,
    execute_job,
    falsify_spec,
    synthesis_spec,
    verify_spec,
)
from .pool import PoolStats, WorkerPool
from .server import JobServer, ServiceConfig, run_server

__all__ = [
    "JOBSPEC_VERSION",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JobSpecError",
    "PoolStats",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "WorkerPool",
    "decode_synthesis_result",
    "encode_synthesis_result",
    "execute_job",
    "falsify_spec",
    "run_server",
    "synthesis_spec",
    "verify_spec",
]
