"""The job-oriented API: one serializable description of any run.

A :class:`JobSpec` is the *single* way to describe a unit of work —
``ccmatic synthesize``, ``verify`` and ``falsify`` all build one and
execute it through the same :func:`execute_job` the HTTP server uses, so
"run locally" and "submit to a service" are the same computation with a
different transport.  Specs round-trip through JSON with exact-Fraction
codecs (:mod:`repro.runtime.serialize`) and are fingerprinted the same
way checkpoints are: a SHA-256 over the canonical encoding, stable
across processes and hosts.

A :class:`JobRecord` is the server-side lifecycle wrapper (queued →
running → done/failed/cancelled) persisted as one JSON file per job, so
a restarted server still knows every job it ever accepted.  Record
version 2 (PR 10) adds the resilience fields: a heartbeat-renewed
*lease* while the job runs, an attempt counter, and the per-attempt
history a re-queued job accumulates; v1 records on disk migrate on
load with the fields defaulted.

Result payloads are JSON too: :func:`encode_synthesis_result` splits
*semantic* fields (solutions, verdict counts, stop reason) from *timing*
fields (wall clock, per-phase seconds) and fingerprints only the former
— two runs of the same spec on different machines produce payloads with
equal ``fingerprint`` even though their timings differ.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Callable, Optional

from ..obs.events import DEBUG
from ..runtime.serialize import (
    decode_candidate,
    decode_config,
    decode_query,
    decode_trace,
    encode_candidate,
    encode_config,
    encode_query,
    encode_trace,
)

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "JOBRECORD_VERSION",
    "JOBSPEC_VERSION",
    "JobSpec",
    "JobSpecError",
    "JobRecord",
    "decode_synthesis_result",
    "encode_synthesis_result",
    "execute_job",
    "falsify_spec",
    "spec_deadline",
    "spec_max_attempts",
    "synthesis_spec",
    "verify_spec",
]

#: bump when the JobSpec layout changes; a spec with a different version
#: is rejected with a clear error, never half-parsed.
#: v2: queries and verify jobs carry a canonical ``environments`` list
#: (the CCAC matrix); encodings and fingerprints changed shape.
JOBSPEC_VERSION = 2

_KINDS = ("synthesize", "verify", "falsify")


class JobSpecError(ValueError):
    """A JobSpec that cannot be decoded (wrong version, unknown kind)."""


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """A serializable, fingerprintable description of one run."""

    kind: str
    #: kind-specific parameters, already JSON-ready (Fractions as strings)
    params: dict
    version: int = JOBSPEC_VERSION

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise JobSpecError(
                f"unknown job kind {self.kind!r}; expected one of {_KINDS}"
            )

    def to_json(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "params": self.params}

    @classmethod
    def from_json(cls, data: Any) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobSpecError(f"JobSpec must be a JSON object, got {type(data).__name__}")
        version = data.get("version")
        if version != JOBSPEC_VERSION:
            raise JobSpecError(
                f"unsupported JobSpec version {version!r}; this build "
                f"understands version {JOBSPEC_VERSION} — re-submit with a "
                f"matching client or upgrade the server"
            )
        kind = data.get("kind")
        params = data.get("params")
        if not isinstance(params, dict):
            raise JobSpecError("JobSpec params must be a JSON object")
        return cls(kind=kind, params=params, version=version)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical encoding (process/host stable)."""
        return hashlib.sha256(
            _canonical(self.to_json()).encode("utf-8")
        ).hexdigest()


# -- spec builders ------------------------------------------------------------

#: attempts a job gets before the server marks it honestly failed, when
#: the spec does not say otherwise
DEFAULT_MAX_ATTEMPTS = 3


def _encode_limits(params: dict, max_attempts, deadline_s) -> dict:
    """Fold the resilience limits into ``params`` — only when explicitly
    given, so a default spec fingerprints identically to older builds."""
    if max_attempts is not None:
        params["max_attempts"] = int(max_attempts)
    if deadline_s is not None:
        params["deadline_s"] = float(deadline_s)
    return params


def spec_max_attempts(spec: JobSpec) -> int:
    """Execution attempts this spec allows before an honest ``failed``."""
    return int(spec.params.get("max_attempts") or DEFAULT_MAX_ATTEMPTS)


def spec_deadline(spec: JobSpec) -> Optional[float]:
    """Per-attempt wall-clock bound in seconds (None = unbounded)."""
    value = spec.params.get("deadline_s")
    return float(value) if value else None

#: RuntimeOptions fields carried in a synthesis spec, with their codecs.
#: checkpoint_path is deliberately NOT part of a spec — where state lives
#: is the executor's business (the server keeps it under its state dir).
_OPTION_FIELDS = {
    "isolate": (bool, bool),
    "solver_timeout": (float, float),
    "solver_mem_mb": (lambda v: v, lambda v: v),
    "retries": (int, int),
    "degrade": (bool, bool),
    "validate": (bool, bool),
    "wce_precision": (str, Fraction),
    "cross_check": (bool, bool),
    "falsify": (int, int),
    "falsify_seed": (int, int),
    "cache_dir": (lambda v: v, lambda v: v),
    "incremental": (bool, bool),
    "certify": (bool, bool),
}


def _encode_options(options) -> dict:
    out = {}
    for name, (enc, _dec) in _OPTION_FIELDS.items():
        value = getattr(options, name)
        out[name] = None if value is None else enc(value)
    return out


def _decode_options(data: dict):
    from ..runtime.runner import RuntimeOptions

    kwargs = {}
    for name, (_enc, dec) in _OPTION_FIELDS.items():
        if name in data:
            value = data[name]
            kwargs[name] = None if value is None else dec(value)
    return RuntimeOptions(**kwargs)


def synthesis_spec(
    query, options=None, max_attempts=None, deadline_s=None,
) -> JobSpec:
    """A synthesize job: the full query plus its runtime options."""
    from ..runtime.runner import RuntimeOptions

    options = options or RuntimeOptions()
    return JobSpec(
        kind="synthesize",
        params=_encode_limits(
            {
                "query": encode_query(query),
                "options": _encode_options(options),
            },
            max_attempts, deadline_s,
        ),
    )


def verify_spec(
    cca: str,
    cfg,
    worst_case: bool = False,
    certify: bool = False,
    falsify: int = 0,
    falsify_seed: int = 0,
    environments=None,
    max_attempts=None,
    deadline_s=None,
) -> JobSpec:
    """A verify job for a named CCA (``rocc``/``eq3``/``const:<gamma>``).

    ``environments`` selects the cells of the CCAC matrix to verify
    against; the canonical encoding makes "not specified" and
    ``[lossless]`` the same spec (and the same fingerprint).
    """
    from ..runtime.serialize import encode_environments

    return JobSpec(
        kind="verify",
        params=_encode_limits(
            {
                "cca": cca,
                "cfg": encode_config(cfg),
                "worst_case": bool(worst_case),
                "certify": bool(certify),
                "falsify": int(falsify),
                "falsify_seed": int(falsify_seed),
                "environments": encode_environments(environments),
            },
            max_attempts, deadline_s,
        ),
    )


def falsify_spec(
    cca: str,
    cfg,
    budget: int = 2000,
    seed: int = 0,
    ticks: int = 120,
    population: int = 24,
    beyond: bool = False,
    exhaustive: bool = False,
    no_verify: bool = False,
    max_attempts=None,
    deadline_s=None,
) -> JobSpec:
    """A falsify job: adversarial trace search against one CCA."""
    return JobSpec(
        kind="falsify",
        params=_encode_limits(
            {
                "cca": cca,
                "cfg": encode_config(cfg),
                "budget": int(budget),
                "seed": int(seed),
                "ticks": int(ticks),
                "population": int(population),
                "beyond": bool(beyond),
                "exhaustive": bool(exhaustive),
                "no_verify": bool(no_verify),
            },
            max_attempts, deadline_s,
        ),
    )


# -- result payloads ----------------------------------------------------------

#: payload keys that are *semantic* — two runs of the same spec must
#: agree on these; everything else (timings, degradations) is allowed to
#: differ between machines and is excluded from the payload fingerprint
_SEMANTIC_KEYS = (
    "solutions", "iterations", "counterexamples", "exhausted", "timed_out",
    "stop_reason", "certified_verdicts", "resumed", "cross_checks",
    "falsification_attempts", "falsification_survivals",
)


def _payload_fingerprint(payload: dict) -> str:
    semantic = {k: payload.get(k) for k in _SEMANTIC_KEYS}
    return hashlib.sha256(_canonical(semantic).encode("utf-8")).hexdigest()


#: semantic keys of verify / falsify payloads — deterministic for a
#: given spec (seeded searches), unlike wall_time or solver_checks
#: (cache warmth changes those between runs of the *same* job)
_VERIFY_SEMANTIC_KEYS = (
    "cca", "verified", "unknown", "counterexample", "environment",
    "certified", "survived",
)
_FALSIFY_SEMANTIC_KEYS = (
    "cca", "verified", "smt_verdict", "survived", "evaluations",
)


def _fingerprint_over(payload: dict, keys: tuple) -> str:
    semantic = {k: payload.get(k) for k in keys}
    return hashlib.sha256(_canonical(semantic).encode("utf-8")).hexdigest()


def encode_synthesis_result(result) -> dict:
    """JSON payload for a :class:`~repro.core.synthesizer.SynthesisResult`."""
    payload = {
        "query": encode_query(result.query),
        "solutions": [encode_candidate(c) for c in result.solutions],
        "iterations": int(result.iterations),
        "counterexamples": int(result.counterexamples),
        "exhausted": bool(result.exhausted),
        "timed_out": bool(result.timed_out),
        "stop_reason": result.stop_reason.value if result.stop_reason else None,
        "certified_verdicts": int(result.certified_verdicts),
        "resumed": bool(result.resumed),
        "cross_checks": (
            None if result.cross_checks is None
            else [c.describe() for c in result.cross_checks]
        ),
        "falsification_attempts": int(result.falsification_attempts),
        "falsification_survivals": int(result.falsification_survivals),
        # timing section: informative, excluded from the fingerprint
        "generator_time": result.generator_time,
        "verifier_time": result.verifier_time,
        "wall_time": result.wall_time,
        "degradations": list(result.degradations),
    }
    payload["fingerprint"] = _payload_fingerprint(payload)
    return payload


class _DecodedCrossCheck:
    """Re-hydrated advisory cross-check: carries only its rendering."""

    def __init__(self, text: str):
        self._text = text

    def describe(self) -> str:
        return self._text


def decode_synthesis_result(payload: dict):
    """Rebuild a :class:`~repro.core.synthesizer.SynthesisResult` from a
    payload — the remote half of "local and submitted runs are the same
    computation".  Raises :class:`JobSpecError` on a fingerprint that
    does not match the payload's semantic content."""
    from ..cegis.interfaces import StopReason
    from ..core.synthesizer import SynthesisResult

    claimed = payload.get("fingerprint")
    if claimed and claimed != _payload_fingerprint(payload):
        raise JobSpecError(
            "result payload fingerprint does not match its content; "
            "refusing to decode a tampered or torn payload"
        )
    query = decode_query(payload["query"])
    crosses = payload.get("cross_checks")
    return SynthesisResult(
        query=query,
        solutions=[decode_candidate(c) for c in payload["solutions"]],
        iterations=int(payload["iterations"]),
        counterexamples=int(payload["counterexamples"]),
        generator_time=float(payload.get("generator_time", 0.0)),
        verifier_time=float(payload.get("verifier_time", 0.0)),
        wall_time=float(payload.get("wall_time", 0.0)),
        exhausted=bool(payload["exhausted"]),
        timed_out=bool(payload["timed_out"]),
        stop_reason=(
            StopReason(payload["stop_reason"])
            if payload.get("stop_reason") else None
        ),
        certified_verdicts=int(payload.get("certified_verdicts", 0)),
        resumed=bool(payload.get("resumed", False)),
        degradations=list(payload.get("degradations", ())),
        cross_checks=(
            None if crosses is None
            else [_DecodedCrossCheck(t) for t in crosses]
        ),
        falsification_attempts=int(payload.get("falsification_attempts", 0)),
        falsification_survivals=int(payload.get("falsification_survivals", 0)),
    )


# -- execution ----------------------------------------------------------------


def execute_job(
    spec: JobSpec,
    *,
    pool=None,
    cache_dir: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    write_corpus: bool = False,
    progress: Optional[Callable[[dict], None]] = None,
    cancel=None,
) -> dict:
    """Run one job to completion; returns its JSON result payload.

    This is the single execution path: the CLI calls it in-process, the
    HTTP server calls it per queued job.  The keyword arguments are
    *executor policy*, not part of the spec: ``pool`` (a
    :class:`~repro.service.pool.WorkerPool`) makes portfolio rounds use
    persistent workers; ``cache_dir`` overrides the spec's cache
    directory with the executor's shared store; ``checkpoint_path``
    gives synthesis jobs crash-safe state under the executor's state
    dir; ``corpus_dir``/``write_corpus`` let a *local* falsify run
    commit minimized violations into a corpus (the server keeps this
    off — jobs must not write into the repo); ``progress`` receives
    every tracer record emitted while the job runs (the server's NDJSON
    stream); ``cancel`` (a
    :class:`~repro.service.resilience.CancelScope`) cooperatively
    aborts the run — with a pool, every kind routes its solver work
    through pool batches, so cancellation lands within one poll tick
    and raises :class:`~repro.service.resilience.JobCancelled` here.
    """
    sink = _ProgressSink(progress) if progress is not None else None
    tr = None
    if sink is not None:
        from ..obs import tracer

        tr = tracer()
        tr.add_sink(sink)
    if cancel is not None:
        cancel.raise_if_cancelled()
    bound = pool is not None and cancel is not None
    if bound:
        pool.bind_cancel(cancel)
    try:
        if spec.kind == "synthesize":
            return _execute_synthesize(spec, pool, cache_dir, checkpoint_path)
        if spec.kind == "verify":
            if pool is not None:
                return _run_in_pool(
                    pool, _pooled_verify_job, (spec.to_json(), cache_dir),
                    cancel,
                )
            return _execute_verify(spec, cache_dir)
        if pool is not None and not write_corpus:
            return _run_in_pool(
                pool, _pooled_falsify_job, (spec.to_json(),), cancel
            )
        return _execute_falsify(
            spec, corpus_dir=corpus_dir, write_corpus=write_corpus
        )
    finally:
        if bound:
            pool.unbind_cancel()
        if tr is not None:
            tr.remove_sink(sink)


def _run_in_pool(pool, fn, args, cancel) -> dict:
    """Run one job body as a single pool task (subprocess, cancellable).

    Verify/falsify bodies are pure Python holding the GIL; running them
    in the executor thread would serialize the server's N executors and
    leave a wedged solver uncancellable.  As a pool task they get real
    process parallelism and the SIGUSR1 cancel path.
    """
    outcome = pool.run_batch(
        [(fn, args)], accept=lambda _r: False, cancel=cancel
    )
    report = outcome.reports.get(0)
    if report is None or report.status == "cancelled":
        from .resilience import JobCancelled

        raise JobCancelled(getattr(cancel, "reason", None) or "user")
    if report.status != "ok":
        raise RuntimeError(
            f"pooled job {report.status}: {report.detail or 'no detail'}"
        )
    return report.result


def _pooled_verify_job(spec_json: dict, cache_dir: Optional[str]) -> dict:
    """Top-level (picklable) verify job body, run inside a pool worker."""
    return _execute_verify(JobSpec.from_json(spec_json), cache_dir)


def _pooled_falsify_job(spec_json: dict) -> dict:
    """Top-level (picklable) falsify job body, run inside a pool worker."""
    return _execute_falsify(JobSpec.from_json(spec_json))


class _ProgressSink:
    """Forwards tracer records to a callback (server job streams).

    Filtered to the thread that created the sink: the tracer is
    process-global and the server runs N executor threads, so an
    unfiltered sink would leak one job's spans into another job's
    stream.  Records relayed from a job's own pool workers are merged
    by ``run_batch`` *in the executor thread*, so they pass the filter.
    """

    level = DEBUG  # stream everything

    def __init__(self, callback: Callable[[dict], None]):
        self._callback = callback
        self._ident = threading.get_ident()

    def emit(self, record: dict) -> None:
        if threading.get_ident() != self._ident:
            return
        try:
            self._callback(record)
        except Exception:  # noqa: BLE001 - progress is advisory
            pass


def _execute_synthesize(spec, pool, cache_dir, checkpoint_path) -> dict:
    from ..runtime.runner import run_synthesis

    query = decode_query(spec.params["query"])
    options = _decode_options(spec.params.get("options", {}))
    if cache_dir is not None:
        options = replace(options, cache_dir=cache_dir)
    if checkpoint_path is not None:
        options = replace(options, checkpoint_path=checkpoint_path)
    if pool is not None:
        options.worker_pool = pool
    result = run_synthesis(query, options)
    return encode_synthesis_result(result)


def _execute_verify(spec, cache_dir: Optional[str] = None) -> dict:
    from ..core.verifier import CcacVerifier
    from ..runtime.serialize import decode_environments

    cca = _named_cca(spec.params["cca"])
    cfg = decode_config(spec.params["cfg"])
    environments = decode_environments(spec.params.get("environments"))
    cache = None
    if cache_dir:
        from ..engine.cache import QueryCache

        cache = QueryCache(cache_dir)
    verifier = CcacVerifier(
        cfg, certify=bool(spec.params.get("certify")), cache=cache,
        environments=environments,
    )
    res = verifier.find_counterexample(
        cca, worst_case=bool(spec.params.get("worst_case"))
    )
    payload = {
        "cca": spec.params["cca"],
        "pretty": cca.pretty(),
        "verified": bool(res.verified),
        "unknown": bool(res.unknown),
        "counterexample": (
            encode_trace(res.counterexample)
            if res.counterexample is not None else None
        ),
        "counterexample_text": (
            str(res.counterexample) if res.counterexample is not None else None
        ),
        "environment": (
            res.environment.key() if res.environment is not None else None
        ),
        "certified": bool(res.certified),
        "solver_checks": int(res.solver_checks),
        "wall_time": res.wall_time,
    }
    if res.certified and res.certificate is not None:
        c = res.certificate
        if isinstance(c, tuple):
            payload["certificates"] = len(c)
        else:
            payload["certificate"] = {
                "steps": int(c.steps),
                "inputs": int(c.inputs),
                "rup_additions": int(c.rup_additions),
                "theory_lemmas": int(c.theory_lemmas),
                "check_time": float(c.check_time),
            }
    budget = int(spec.params.get("falsify") or 0)
    if budget and res.verified:
        from ..ccas import TemplateCCA
        from ..falsify import FalsifyBudget, falsify_cca

        rep = falsify_cca(
            lambda: TemplateCCA(cca, cwnd_min=cfg.cwnd_min),
            cfg,
            spec=spec.params["cca"],
            budget=FalsifyBudget(evaluations=budget),
            seed=int(spec.params.get("falsify_seed") or 0),
            verified=True,
        )
        payload["falsify"] = rep.search.describe()
        payload["survived"] = bool(rep.survived)
    payload["fingerprint"] = _fingerprint_over(payload, _VERIFY_SEMANTIC_KEYS)
    return payload


def _execute_falsify(
    spec, corpus_dir: Optional[str] = None, write_corpus: bool = False
) -> dict:
    from ..falsify import FalsifyBudget, falsify_cca, resolve_cca

    p = spec.params
    cfg = decode_config(p["cfg"])
    factory, smt_verifiable = resolve_cca(p["cca"])
    verified = False
    smt_verdict = None
    if smt_verifiable and not p.get("no_verify"):
        from ..core.verifier import CcacVerifier

        res = CcacVerifier(cfg).find_counterexample(_named_cca(p["cca"]))
        verified = bool(res.verified)
        smt_verdict = (
            "verified" if res.verified
            else "counterexample" if res.counterexample is not None
            else "unknown"
        )
    budget = FalsifyBudget(
        evaluations=int(p["budget"]),
        population=int(p.get("population", 24)),
        stop_after=0 if p.get("exhaustive") else 1,
    )
    report = falsify_cca(
        factory,
        cfg,
        spec=p["cca"],
        budget=budget,
        seed=int(p.get("seed", 0)),
        ticks=int(p.get("ticks", 120)),
        in_fragment=not p.get("beyond"),
        verified=verified,
        corpus_dir=corpus_dir,
        write_corpus=write_corpus,
    )
    payload = {
        "cca": p["cca"],
        "verified": verified,
        "smt_verdict": smt_verdict,
        "survived": bool(report.survived),
        "description": report.describe(),
        "evaluations": int(report.search.attempts),
    }
    payload["fingerprint"] = _fingerprint_over(payload, _FALSIFY_SEMANTIC_KEYS)
    return payload


def _named_cca(name: str):
    """The CLI's named-CCA registry, importable without argparse."""
    from ..core import constant_cwnd, paper_eq_iii, rocc

    if name == "rocc":
        return rocc()
    if name == "eq3":
        return paper_eq_iii()
    if name.startswith("const:"):
        return constant_cwnd(Fraction(name.split(":", 1)[1]))
    raise JobSpecError(
        f"unknown CCA {name!r}; use rocc, eq3, or const:<gamma>"
    )


# -- the durable job record ---------------------------------------------------

_STATES = ("queued", "running", "done", "failed", "cancelled")

#: bump when the JobRecord layout changes; older records on disk are
#: migrated on load, never rejected.
#: v2: lease_expires_at, attempts, attempt_history (PR 10 resilience).
JOBRECORD_VERSION = 2


@dataclass
class JobRecord:
    """Server-side lifecycle of one accepted job (durable as JSON)."""

    spec: JobSpec
    job_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    record_version: int = JOBRECORD_VERSION
    #: execution attempts started so far (crash re-queues increment it)
    attempts: int = 0
    #: one dict per closed attempt (see resilience.AttemptRecord.to_json)
    attempt_history: list = field(default_factory=list)
    #: heartbeat-renewed while an executor runs the job; an expired lease
    #: at boot means the previous server died mid-attempt -> re-queue
    lease_expires_at: Optional[float] = None

    def to_json(self, with_result: bool = True) -> dict:
        out = {
            "record_version": self.record_version,
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "spec": self.spec.to_json(),
            "spec_fingerprint": self.spec.fingerprint(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "attempts": self.attempts,
            "attempt_history": list(self.attempt_history),
            "lease_expires_at": self.lease_expires_at,
        }
        if with_result:
            out["result"] = self.result
        return out

    @classmethod
    def from_json(cls, data: dict) -> "JobRecord":
        spec = JobSpec.from_json(data["spec"])
        state = data.get("state", "queued")
        if state not in _STATES:
            raise JobSpecError(f"unknown job state {state!r}")
        # v1 records predate the lease fields: default them (migration)
        return cls(
            spec=spec,
            job_id=str(data["job_id"]),
            state=state,
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            result=data.get("result"),
            error=data.get("error"),
            # normalized to the current version: a migrated v1 record is
            # re-persisted v2-shaped the next time its state changes
            record_version=JOBRECORD_VERSION,
            attempts=int(data.get("attempts", 0)),
            attempt_history=list(data.get("attempt_history", ())),
            lease_expires_at=data.get("lease_expires_at"),
        )
