"""The job-oriented API: one serializable description of any run.

A :class:`JobSpec` is the *single* way to describe a unit of work —
``ccmatic synthesize``, ``verify`` and ``falsify`` all build one and
execute it through the same :func:`execute_job` the HTTP server uses, so
"run locally" and "submit to a service" are the same computation with a
different transport.  Specs round-trip through JSON with exact-Fraction
codecs (:mod:`repro.runtime.serialize`) and are fingerprinted the same
way checkpoints are: a SHA-256 over the canonical encoding, stable
across processes and hosts.

A :class:`JobRecord` is the server-side lifecycle wrapper (queued →
running → done/failed/cancelled) persisted as one JSON file per job, so
a restarted server still knows every job it ever accepted.

Result payloads are JSON too: :func:`encode_synthesis_result` splits
*semantic* fields (solutions, verdict counts, stop reason) from *timing*
fields (wall clock, per-phase seconds) and fingerprints only the former
— two runs of the same spec on different machines produce payloads with
equal ``fingerprint`` even though their timings differ.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Callable, Optional

from ..obs.events import DEBUG
from ..runtime.serialize import (
    decode_candidate,
    decode_config,
    decode_query,
    decode_trace,
    encode_candidate,
    encode_config,
    encode_query,
    encode_trace,
)

__all__ = [
    "JOBSPEC_VERSION",
    "JobSpec",
    "JobSpecError",
    "JobRecord",
    "decode_synthesis_result",
    "encode_synthesis_result",
    "execute_job",
    "falsify_spec",
    "synthesis_spec",
    "verify_spec",
]

#: bump when the JobSpec layout changes; a spec with a different version
#: is rejected with a clear error, never half-parsed.
#: v2: queries and verify jobs carry a canonical ``environments`` list
#: (the CCAC matrix); encodings and fingerprints changed shape.
JOBSPEC_VERSION = 2

_KINDS = ("synthesize", "verify", "falsify")


class JobSpecError(ValueError):
    """A JobSpec that cannot be decoded (wrong version, unknown kind)."""


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """A serializable, fingerprintable description of one run."""

    kind: str
    #: kind-specific parameters, already JSON-ready (Fractions as strings)
    params: dict
    version: int = JOBSPEC_VERSION

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise JobSpecError(
                f"unknown job kind {self.kind!r}; expected one of {_KINDS}"
            )

    def to_json(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "params": self.params}

    @classmethod
    def from_json(cls, data: Any) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobSpecError(f"JobSpec must be a JSON object, got {type(data).__name__}")
        version = data.get("version")
        if version != JOBSPEC_VERSION:
            raise JobSpecError(
                f"unsupported JobSpec version {version!r}; this build "
                f"understands version {JOBSPEC_VERSION} — re-submit with a "
                f"matching client or upgrade the server"
            )
        kind = data.get("kind")
        params = data.get("params")
        if not isinstance(params, dict):
            raise JobSpecError("JobSpec params must be a JSON object")
        return cls(kind=kind, params=params, version=version)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical encoding (process/host stable)."""
        return hashlib.sha256(
            _canonical(self.to_json()).encode("utf-8")
        ).hexdigest()


# -- spec builders ------------------------------------------------------------

#: RuntimeOptions fields carried in a synthesis spec, with their codecs.
#: checkpoint_path is deliberately NOT part of a spec — where state lives
#: is the executor's business (the server keeps it under its state dir).
_OPTION_FIELDS = {
    "isolate": (bool, bool),
    "solver_timeout": (float, float),
    "solver_mem_mb": (lambda v: v, lambda v: v),
    "retries": (int, int),
    "degrade": (bool, bool),
    "validate": (bool, bool),
    "wce_precision": (str, Fraction),
    "cross_check": (bool, bool),
    "falsify": (int, int),
    "falsify_seed": (int, int),
    "cache_dir": (lambda v: v, lambda v: v),
    "incremental": (bool, bool),
    "certify": (bool, bool),
}


def _encode_options(options) -> dict:
    out = {}
    for name, (enc, _dec) in _OPTION_FIELDS.items():
        value = getattr(options, name)
        out[name] = None if value is None else enc(value)
    return out


def _decode_options(data: dict):
    from ..runtime.runner import RuntimeOptions

    kwargs = {}
    for name, (_enc, dec) in _OPTION_FIELDS.items():
        if name in data:
            value = data[name]
            kwargs[name] = None if value is None else dec(value)
    return RuntimeOptions(**kwargs)


def synthesis_spec(query, options=None) -> JobSpec:
    """A synthesize job: the full query plus its runtime options."""
    from ..runtime.runner import RuntimeOptions

    options = options or RuntimeOptions()
    return JobSpec(
        kind="synthesize",
        params={
            "query": encode_query(query),
            "options": _encode_options(options),
        },
    )


def verify_spec(
    cca: str,
    cfg,
    worst_case: bool = False,
    certify: bool = False,
    falsify: int = 0,
    falsify_seed: int = 0,
    environments=None,
) -> JobSpec:
    """A verify job for a named CCA (``rocc``/``eq3``/``const:<gamma>``).

    ``environments`` selects the cells of the CCAC matrix to verify
    against; the canonical encoding makes "not specified" and
    ``[lossless]`` the same spec (and the same fingerprint).
    """
    from ..runtime.serialize import encode_environments

    return JobSpec(
        kind="verify",
        params={
            "cca": cca,
            "cfg": encode_config(cfg),
            "worst_case": bool(worst_case),
            "certify": bool(certify),
            "falsify": int(falsify),
            "falsify_seed": int(falsify_seed),
            "environments": encode_environments(environments),
        },
    )


def falsify_spec(
    cca: str,
    cfg,
    budget: int = 2000,
    seed: int = 0,
    ticks: int = 120,
    population: int = 24,
    beyond: bool = False,
    exhaustive: bool = False,
    no_verify: bool = False,
) -> JobSpec:
    """A falsify job: adversarial trace search against one CCA."""
    return JobSpec(
        kind="falsify",
        params={
            "cca": cca,
            "cfg": encode_config(cfg),
            "budget": int(budget),
            "seed": int(seed),
            "ticks": int(ticks),
            "population": int(population),
            "beyond": bool(beyond),
            "exhaustive": bool(exhaustive),
            "no_verify": bool(no_verify),
        },
    )


# -- result payloads ----------------------------------------------------------

#: payload keys that are *semantic* — two runs of the same spec must
#: agree on these; everything else (timings, degradations) is allowed to
#: differ between machines and is excluded from the payload fingerprint
_SEMANTIC_KEYS = (
    "solutions", "iterations", "counterexamples", "exhausted", "timed_out",
    "stop_reason", "certified_verdicts", "resumed", "cross_checks",
    "falsification_attempts", "falsification_survivals",
)


def _payload_fingerprint(payload: dict) -> str:
    semantic = {k: payload.get(k) for k in _SEMANTIC_KEYS}
    return hashlib.sha256(_canonical(semantic).encode("utf-8")).hexdigest()


def encode_synthesis_result(result) -> dict:
    """JSON payload for a :class:`~repro.core.synthesizer.SynthesisResult`."""
    payload = {
        "query": encode_query(result.query),
        "solutions": [encode_candidate(c) for c in result.solutions],
        "iterations": int(result.iterations),
        "counterexamples": int(result.counterexamples),
        "exhausted": bool(result.exhausted),
        "timed_out": bool(result.timed_out),
        "stop_reason": result.stop_reason.value if result.stop_reason else None,
        "certified_verdicts": int(result.certified_verdicts),
        "resumed": bool(result.resumed),
        "cross_checks": (
            None if result.cross_checks is None
            else [c.describe() for c in result.cross_checks]
        ),
        "falsification_attempts": int(result.falsification_attempts),
        "falsification_survivals": int(result.falsification_survivals),
        # timing section: informative, excluded from the fingerprint
        "generator_time": result.generator_time,
        "verifier_time": result.verifier_time,
        "wall_time": result.wall_time,
        "degradations": list(result.degradations),
    }
    payload["fingerprint"] = _payload_fingerprint(payload)
    return payload


class _DecodedCrossCheck:
    """Re-hydrated advisory cross-check: carries only its rendering."""

    def __init__(self, text: str):
        self._text = text

    def describe(self) -> str:
        return self._text


def decode_synthesis_result(payload: dict):
    """Rebuild a :class:`~repro.core.synthesizer.SynthesisResult` from a
    payload — the remote half of "local and submitted runs are the same
    computation".  Raises :class:`JobSpecError` on a fingerprint that
    does not match the payload's semantic content."""
    from ..cegis.interfaces import StopReason
    from ..core.synthesizer import SynthesisResult

    claimed = payload.get("fingerprint")
    if claimed and claimed != _payload_fingerprint(payload):
        raise JobSpecError(
            "result payload fingerprint does not match its content; "
            "refusing to decode a tampered or torn payload"
        )
    query = decode_query(payload["query"])
    crosses = payload.get("cross_checks")
    return SynthesisResult(
        query=query,
        solutions=[decode_candidate(c) for c in payload["solutions"]],
        iterations=int(payload["iterations"]),
        counterexamples=int(payload["counterexamples"]),
        generator_time=float(payload.get("generator_time", 0.0)),
        verifier_time=float(payload.get("verifier_time", 0.0)),
        wall_time=float(payload.get("wall_time", 0.0)),
        exhausted=bool(payload["exhausted"]),
        timed_out=bool(payload["timed_out"]),
        stop_reason=(
            StopReason(payload["stop_reason"])
            if payload.get("stop_reason") else None
        ),
        certified_verdicts=int(payload.get("certified_verdicts", 0)),
        resumed=bool(payload.get("resumed", False)),
        degradations=list(payload.get("degradations", ())),
        cross_checks=(
            None if crosses is None
            else [_DecodedCrossCheck(t) for t in crosses]
        ),
        falsification_attempts=int(payload.get("falsification_attempts", 0)),
        falsification_survivals=int(payload.get("falsification_survivals", 0)),
    )


# -- execution ----------------------------------------------------------------


def execute_job(
    spec: JobSpec,
    *,
    pool=None,
    cache_dir: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    corpus_dir: Optional[str] = None,
    write_corpus: bool = False,
    progress: Optional[Callable[[dict], None]] = None,
) -> dict:
    """Run one job to completion; returns its JSON result payload.

    This is the single execution path: the CLI calls it in-process, the
    HTTP server calls it per queued job.  The keyword arguments are
    *executor policy*, not part of the spec: ``pool`` (a
    :class:`~repro.service.pool.WorkerPool`) makes portfolio rounds use
    persistent workers; ``cache_dir`` overrides the spec's cache
    directory with the executor's shared store; ``checkpoint_path``
    gives synthesis jobs crash-safe state under the executor's state
    dir; ``corpus_dir``/``write_corpus`` let a *local* falsify run
    commit minimized violations into a corpus (the server keeps this
    off — jobs must not write into the repo); ``progress`` receives
    every tracer record emitted while the job runs (the server's NDJSON
    stream).
    """
    sink = _ProgressSink(progress) if progress is not None else None
    tr = None
    if sink is not None:
        from ..obs import tracer

        tr = tracer()
        tr.add_sink(sink)
    try:
        if spec.kind == "synthesize":
            return _execute_synthesize(spec, pool, cache_dir, checkpoint_path)
        if spec.kind == "verify":
            return _execute_verify(spec, cache_dir)
        return _execute_falsify(
            spec, corpus_dir=corpus_dir, write_corpus=write_corpus
        )
    finally:
        if tr is not None:
            tr.remove_sink(sink)


class _ProgressSink:
    """Forwards every tracer record to a callback (server job streams)."""

    level = DEBUG  # stream everything

    def __init__(self, callback: Callable[[dict], None]):
        self._callback = callback

    def emit(self, record: dict) -> None:
        try:
            self._callback(record)
        except Exception:  # noqa: BLE001 - progress is advisory
            pass


def _execute_synthesize(spec, pool, cache_dir, checkpoint_path) -> dict:
    from ..runtime.runner import run_synthesis

    query = decode_query(spec.params["query"])
    options = _decode_options(spec.params.get("options", {}))
    if cache_dir is not None:
        options = replace(options, cache_dir=cache_dir)
    if checkpoint_path is not None:
        options = replace(options, checkpoint_path=checkpoint_path)
    if pool is not None:
        options.worker_pool = pool
    result = run_synthesis(query, options)
    return encode_synthesis_result(result)


def _execute_verify(spec, cache_dir: Optional[str] = None) -> dict:
    from ..core.verifier import CcacVerifier
    from ..runtime.serialize import decode_environments

    cca = _named_cca(spec.params["cca"])
    cfg = decode_config(spec.params["cfg"])
    environments = decode_environments(spec.params.get("environments"))
    cache = None
    if cache_dir:
        from ..engine.cache import QueryCache

        cache = QueryCache(cache_dir)
    verifier = CcacVerifier(
        cfg, certify=bool(spec.params.get("certify")), cache=cache,
        environments=environments,
    )
    res = verifier.find_counterexample(
        cca, worst_case=bool(spec.params.get("worst_case"))
    )
    payload = {
        "cca": spec.params["cca"],
        "pretty": cca.pretty(),
        "verified": bool(res.verified),
        "unknown": bool(res.unknown),
        "counterexample": (
            encode_trace(res.counterexample)
            if res.counterexample is not None else None
        ),
        "counterexample_text": (
            str(res.counterexample) if res.counterexample is not None else None
        ),
        "environment": (
            res.environment.key() if res.environment is not None else None
        ),
        "certified": bool(res.certified),
        "solver_checks": int(res.solver_checks),
        "wall_time": res.wall_time,
    }
    if res.certified and res.certificate is not None:
        c = res.certificate
        if isinstance(c, tuple):
            payload["certificates"] = len(c)
        else:
            payload["certificate"] = {
                "steps": int(c.steps),
                "inputs": int(c.inputs),
                "rup_additions": int(c.rup_additions),
                "theory_lemmas": int(c.theory_lemmas),
                "check_time": float(c.check_time),
            }
    budget = int(spec.params.get("falsify") or 0)
    if budget and res.verified:
        from ..ccas import TemplateCCA
        from ..falsify import FalsifyBudget, falsify_cca

        rep = falsify_cca(
            lambda: TemplateCCA(cca, cwnd_min=cfg.cwnd_min),
            cfg,
            spec=spec.params["cca"],
            budget=FalsifyBudget(evaluations=budget),
            seed=int(spec.params.get("falsify_seed") or 0),
            verified=True,
        )
        payload["falsify"] = rep.search.describe()
        payload["survived"] = bool(rep.survived)
    return payload


def _execute_falsify(
    spec, corpus_dir: Optional[str] = None, write_corpus: bool = False
) -> dict:
    from ..falsify import FalsifyBudget, falsify_cca, resolve_cca

    p = spec.params
    cfg = decode_config(p["cfg"])
    factory, smt_verifiable = resolve_cca(p["cca"])
    verified = False
    smt_verdict = None
    if smt_verifiable and not p.get("no_verify"):
        from ..core.verifier import CcacVerifier

        res = CcacVerifier(cfg).find_counterexample(_named_cca(p["cca"]))
        verified = bool(res.verified)
        smt_verdict = (
            "verified" if res.verified
            else "counterexample" if res.counterexample is not None
            else "unknown"
        )
    budget = FalsifyBudget(
        evaluations=int(p["budget"]),
        population=int(p.get("population", 24)),
        stop_after=0 if p.get("exhaustive") else 1,
    )
    report = falsify_cca(
        factory,
        cfg,
        spec=p["cca"],
        budget=budget,
        seed=int(p.get("seed", 0)),
        ticks=int(p.get("ticks", 120)),
        in_fragment=not p.get("beyond"),
        verified=verified,
        corpus_dir=corpus_dir,
        write_corpus=write_corpus,
    )
    return {
        "cca": p["cca"],
        "verified": verified,
        "smt_verdict": smt_verdict,
        "survived": bool(report.survived),
        "description": report.describe(),
        "evaluations": int(report.search.attempts),
    }


def _named_cca(name: str):
    """The CLI's named-CCA registry, importable without argparse."""
    from ..core import constant_cwnd, paper_eq_iii, rocc

    if name == "rocc":
        return rocc()
    if name == "eq3":
        return paper_eq_iii()
    if name.startswith("const:"):
        return constant_cwnd(Fraction(name.split(":", 1)[1]))
    raise JobSpecError(
        f"unknown CCA {name!r}; use rocc, eq3, or const:<gamma>"
    )


# -- the durable job record ---------------------------------------------------

_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class JobRecord:
    """Server-side lifecycle of one accepted job (durable as JSON)."""

    spec: JobSpec
    job_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None

    def to_json(self, with_result: bool = True) -> dict:
        out = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "spec": self.spec.to_json(),
            "spec_fingerprint": self.spec.fingerprint(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if with_result:
            out["result"] = self.result
        return out

    @classmethod
    def from_json(cls, data: dict) -> "JobRecord":
        spec = JobSpec.from_json(data["spec"])
        state = data.get("state", "queued")
        if state not in _STATES:
            raise JobSpecError(f"unknown job state {state!r}")
        return cls(
            spec=spec,
            job_id=str(data["job_id"]),
            state=state,
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            result=data.get("result"),
            error=data.get("error"),
        )
