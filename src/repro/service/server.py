"""The control plane: an asyncio HTTP/JSON server over the job API.

Stdlib only — the server is a hand-rolled HTTP/1.1 endpoint on
``asyncio.start_server`` (no framework dependency), speaking JSON for
control and NDJSON for live progress streams.

Endpoints:

* ``POST /jobs`` — submit a :class:`~repro.service.jobs.JobSpec`;
  returns ``202`` with the job id and spec fingerprint.
* ``GET /jobs`` — list every known job (durable across restarts).
* ``GET /jobs/<id>`` — one job's lifecycle record (sans result body).
* ``GET /jobs/<id>/result`` — the result payload once ``done``.
* ``GET /jobs/<id>/events`` — NDJSON: every ``repro.obs`` tracer record
  emitted while the job runs, then one final ``{"state": ...}`` line.
* ``POST /jobs/<id>/cancel`` — cancel a *queued* job (running jobs
  finish; the pool owns in-flight cancellation).
* ``GET /cache/stats`` — persisted counters + true disk usage of the
  service-wide query cache.
* ``GET /stats`` — pool counters and job-state tallies.
* ``GET /healthz`` — liveness probe.
* ``POST /shutdown`` — drain and exit cleanly (no orphan workers).

Durability: every job record is one JSON file under
``<state_dir>/jobs/``, rewritten atomically on each state change.  On
boot the server re-loads them; jobs that were ``running`` when the
previous process died are re-queued (their execution is repeatable — a
JobSpec is a pure description).

Execution: one job at a time, in a thread
(``asyncio.to_thread``), against the shared :class:`WorkerPool` and the
service-wide cache — the same :func:`~repro.service.jobs.execute_job`
path the CLI uses locally.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from ..obs import tracer
from ..runtime.errors import SoundnessError
from .jobs import JobRecord, JobSpec, JobSpecError
from .pool import WorkerPool

__all__ = ["ServiceConfig", "JobServer", "run_server"]

_JSON = {"Content-Type": "application/json"}
_NDJSON = {"Content-Type": "application/x-ndjson"}


@dataclass
class ServiceConfig:
    """Everything a control plane instance needs to run."""

    host: str = "127.0.0.1"
    port: int = 8736
    #: durable state root: job records under ``jobs/``, the shared query
    #: cache under ``cache/``, checkpoints under ``checkpoints/``
    state_dir: str = ".ccmatic-service"
    #: persistent workers serving portfolio rounds
    pool_size: int = 2
    #: per-worker memory cap (MiB)
    memory_mb: Optional[int] = None
    #: size cap of the shared on-disk query cache (MiB); None = unbounded
    max_cache_mb: Optional[float] = None
    #: recycle a pool worker after this many tasks
    max_tasks_per_worker: int = 64

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.state_dir, "cache")

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.state_dir, "jobs")

    @property
    def checkpoints_dir(self) -> str:
        return os.path.join(self.state_dir, "checkpoints")


def _prime_worker():
    """Warm a fresh pool worker: import the heavy modules once.

    Runs inside the child.  Importing the verifier stack populates the
    module cache and the term-interning machinery, so the first real
    task does not pay cold-import cost.
    """
    from ..core import verifier as _verifier  # noqa: F401
    from ..smt import compile as _compile  # noqa: F401


class JobServer:
    """One control-plane instance (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.jobs: dict[str, JobRecord] = {}
        self.pool = WorkerPool(
            size=self.config.pool_size,
            memory_mb=self.config.memory_mb,
            max_tasks_per_worker=self.config.max_tasks_per_worker,
            prime=(_prime_worker, (), {}),
        )
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._runner_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        os.makedirs(self.config.jobs_dir, exist_ok=True)
        os.makedirs(self.config.cache_dir, exist_ok=True)
        os.makedirs(self.config.checkpoints_dir, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        self._load_jobs()
        self.pool.start()
        self._runner_task = asyncio.create_task(self._run_jobs())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        tracer().event(
            "service.start",
            host=self.config.host,
            port=self.port,
            pool=self.config.pool_size,
            msg=f"[service] listening on {self.config.host}:{self.port} "
                f"({self.config.pool_size} pooled workers)",
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._runner_task is not None:
            self._runner_task.cancel()
            try:
                await self._runner_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._runner_task = None
        # wake every stream so clients see the end of their job
        for queues in list(self._watchers.values()):
            for q in queues:
                q.put_nowait(None)
        self.pool.shutdown()
        tracer().event("service.stop", msg="[service] stopped")

    # -- durable job store ---------------------------------------------------

    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.config.jobs_dir, f"{job_id}.json")

    def _persist(self, record: JobRecord) -> None:
        data = json.dumps(record.to_json())
        fd, tmp = tempfile.mkstemp(dir=self.config.jobs_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(data)
        os.replace(tmp, self._record_path(record.job_id))

    def _load_jobs(self) -> None:
        try:
            names = sorted(os.listdir(self.config.jobs_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.config.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as f:
                    record = JobRecord.from_json(json.load(f))
            except (OSError, ValueError, KeyError, JobSpecError):
                continue  # a torn or foreign file is not a job
            self.jobs[record.job_id] = record
            if record.state in ("queued", "running"):
                # a job that was mid-flight when the previous process
                # died is repeatable: its spec is a pure description
                record.state = "queued"
                record.started_at = None
                self._persist(record)
                self._queue.put_nowait(record.job_id)

    # -- job execution -------------------------------------------------------

    async def _run_jobs(self) -> None:
        while True:
            job_id = await self._queue.get()
            record = self.jobs.get(job_id)
            if record is None or record.state != "queued":
                continue  # cancelled (or foreign) while queued
            record.state = "running"
            record.started_at = time.time()
            self._persist(record)
            self._notify(job_id, {"type": "job", "state": "running",
                                  "job_id": job_id})
            loop = asyncio.get_running_loop()

            def _progress(rec: dict, job_id=job_id) -> None:
                # called from the executor thread: hop to the loop
                loop.call_soon_threadsafe(self._notify, job_id, rec)

            try:
                result = await asyncio.to_thread(
                    self._execute, record, _progress
                )
                record.result = result
                record.state = "done"
                record.error = None
            except SoundnessError as exc:
                # a soundness failure is loud everywhere: the job fails
                # AND the server refuses further work (something is
                # wrong with the engine, not with this one spec)
                record.state = "failed"
                record.error = f"SoundnessError: {exc}"
                self._finish(record)
                self._shutdown.set()
                raise
            except Exception as exc:  # noqa: BLE001 - job-level fault barrier
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
            self._finish(record)

    def _execute(self, record: JobRecord, progress) -> dict:
        from .jobs import execute_job

        checkpoint = None
        if record.spec.kind == "synthesize":
            checkpoint = os.path.join(
                self.config.checkpoints_dir, f"{record.job_id}.ckpt"
            )
        return execute_job(
            record.spec,
            pool=self.pool,
            cache_dir=self.config.cache_dir,
            checkpoint_path=checkpoint,
            progress=progress,
        )

    def _finish(self, record: JobRecord) -> None:
        record.finished_at = time.time()
        self._persist(record)
        if self.config.max_cache_mb is not None:
            # enforce the service-wide cache cap between jobs (the
            # executor-side caches track bytes; this applies the LRU cut)
            from ..engine.cache import QueryCache

            QueryCache(
                self.config.cache_dir, max_disk_mb=self.config.max_cache_mb
            )._maybe_evict()
        self._notify(
            record.job_id,
            {"type": "job", "state": record.state,
             "job_id": record.job_id, "error": record.error},
        )
        for q in self._watchers.pop(record.job_id, ()):  # close streams
            q.put_nowait(None)

    def _notify(self, job_id: str, record: dict) -> None:
        for q in self._watchers.get(job_id, ()):
            q.put_nowait(record)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._handle_request(reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request != dead server
            try:
                await _respond(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await _respond(writer, 400, {"error": "malformed request line"})
            return
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        await self._route(method, target.split("?", 1)[0], body, writer)

    async def _route(self, method: str, path: str, body: bytes, writer) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            await _respond(writer, 200, {"ok": True})
        elif method == "GET" and parts == ["stats"]:
            await self._get_stats(writer)
        elif method == "GET" and parts == ["cache", "stats"]:
            await self._get_cache_stats(writer)
        elif method == "POST" and parts == ["shutdown"]:
            await _respond(writer, 200, {"ok": True, "state": "stopping"})
            self._shutdown.set()
        elif method == "POST" and parts == ["jobs"]:
            await self._post_job(body, writer)
        elif method == "GET" and parts == ["jobs"]:
            await _respond(writer, 200, {
                "jobs": [r.to_json(with_result=False)
                         for r in self.jobs.values()],
            })
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await self._get_job(parts[1], writer)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "GET" \
                and parts[2] == "result":
            await self._get_result(parts[1], writer)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "GET" \
                and parts[2] == "events":
            await self._stream_events(parts[1], writer)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "POST" \
                and parts[2] == "cancel":
            await self._cancel_job(parts[1], writer)
        else:
            await _respond(writer, 404, {"error": f"no route {method} {path}"})

    # -- handlers ------------------------------------------------------------

    async def _post_job(self, body: bytes, writer) -> None:
        try:
            spec = JobSpec.from_json(json.loads(body.decode("utf-8")))
        except (ValueError, JobSpecError) as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        record = JobRecord(spec=spec)
        self.jobs[record.job_id] = record
        self._persist(record)
        self._queue.put_nowait(record.job_id)
        tracer().event(
            "service.job_submitted", job=record.job_id, kind=spec.kind,
            msg=f"[service] job {record.job_id} queued ({spec.kind})",
        )
        await _respond(writer, 202, {
            "job_id": record.job_id,
            "state": record.state,
            "spec_fingerprint": spec.fingerprint(),
        })

    async def _get_job(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        await _respond(writer, 200, record.to_json(with_result=False))

    async def _get_result(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        if record.state == "done":
            await _respond(writer, 200, {"job_id": job_id,
                                         "result": record.result})
        elif record.state == "failed":
            await _respond(writer, 409, {"job_id": job_id, "state": "failed",
                                         "error": record.error})
        else:
            await _respond(writer, 409, {"job_id": job_id,
                                         "state": record.state,
                                         "error": "job is not finished"})

    async def _cancel_job(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        if record.state == "queued":
            record.state = "cancelled"
            self._finish(record)
            await _respond(writer, 200, {"job_id": job_id,
                                         "state": "cancelled"})
        else:
            await _respond(writer, 409, {
                "job_id": job_id, "state": record.state,
                "error": "only queued jobs can be cancelled",
            })

    async def _stream_events(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        queue: asyncio.Queue = asyncio.Queue()
        terminal = record.state in ("done", "failed", "cancelled")
        if not terminal:
            self._watchers.setdefault(job_id, []).append(queue)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(_ndjson({"type": "job", "state": record.state,
                              "job_id": job_id}))
        await writer.drain()
        if terminal:
            return
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                writer.write(_ndjson(item))
                await writer.drain()
        finally:
            watchers = self._watchers.get(job_id)
            if watchers and queue in watchers:
                watchers.remove(queue)

    async def _get_cache_stats(self, writer) -> None:
        from ..engine.cache import QueryCache, read_persisted_stats

        cache = QueryCache(self.config.cache_dir)
        payload = dict(read_persisted_stats(self.config.cache_dir))
        payload.update(cache.disk_usage())
        payload["cache_dir"] = self.config.cache_dir
        payload["max_cache_mb"] = self.config.max_cache_mb
        await _respond(writer, 200, payload)

    async def _get_stats(self, writer) -> None:
        states: dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        await _respond(writer, 200, {
            "jobs": states,
            "queued": self._queue.qsize(),
            "pool": self.pool.stats.to_json(),
        })


def _ndjson(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


async def _respond(writer, status: int, payload: dict) -> None:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 409: "Conflict",
              500: "Internal Server Error"}.get(status, "OK")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + body
    )
    await writer.drain()


def run_server(config: Optional[ServiceConfig] = None) -> None:
    """Blocking entry point (the ``ccmatic serve`` body)."""

    async def _main() -> None:
        server = JobServer(config)
        await server.start()
        print(f"ccmatic service on http://{server.config.host}:{server.port} "
              f"(state: {server.config.state_dir})", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
