"""The control plane: an asyncio HTTP/JSON server over the job API.

Stdlib only — the server is a hand-rolled HTTP/1.1 endpoint on
``asyncio.start_server`` (no framework dependency), speaking JSON for
control and NDJSON for live progress streams.

Endpoints:

* ``POST /jobs`` — submit a :class:`~repro.service.jobs.JobSpec`;
  returns ``202`` with the job id and spec fingerprint.  Re-submitting
  an identical spec while the original is queued/running/done returns
  the existing job (``200``, ``deduped: true``) — client retries after
  a lost response are safe.  A full queue answers ``429`` with a
  ``Retry-After`` header; a draining server answers ``503``.
* ``GET /jobs`` — list every known job (durable across restarts).
* ``GET /jobs/<id>`` — one job's lifecycle record (sans result body).
* ``GET /jobs/<id>/result`` — the result payload once ``done``.
* ``GET /jobs/<id>/events[?from=N]`` — NDJSON: every ``repro.obs``
  tracer record emitted while the job runs, then one final
  ``{"state": ...}`` line.  Records carry a monotonically increasing
  ``seq``; ``?from=N`` replays the buffered tail from that cursor (a
  ``{"type": "gap"}`` line marks records that fell out of the buffer),
  so a client can reconnect a torn stream without losing progress.
* ``POST /jobs/<id>/cancel`` — cancel a queued *or running* job;
  running jobs are cancelled cooperatively through the worker pool's
  SIGUSR1 path (``202 cancelling``, terminal state follows).
* ``GET /cache/stats`` — persisted counters + true disk usage of the
  service-wide query cache.
* ``GET /stats`` — pool counters, job-state tallies, queue depth,
  executor occupancy, and load-shed count.
* ``GET /healthz`` — liveness probe.
* ``POST /shutdown`` — graceful drain: stop admitting work, finish (or
  re-queue, past ``drain_grace``) in-flight jobs, then exit cleanly.

Durability: every job record is one JSON file under
``<state_dir>/jobs/``, rewritten atomically on each state change.  On
boot the server re-loads them; jobs that were ``running`` when the
previous process died hold an expired *lease* and are re-queued —
bounded by the spec's ``max_attempts`` — with the interrupted attempt
recorded in their history (their execution is repeatable: a JobSpec is
a pure description; see DESIGN "Why re-queue is safe").

Execution: ``executors`` jobs at a time, each in a thread
(``asyncio.to_thread``) against the shared :class:`WorkerPool` and the
service-wide cache — the same :func:`~repro.service.jobs.execute_job`
path the CLI uses locally.  A watchdog renews running jobs' leases and
enforces per-spec wall-clock deadlines through each job's
:class:`~repro.service.resilience.CancelScope`.

Chaos: the request path visits ``service.accept``, ``service.response``
and ``service.stream`` injection points; armed network faults
(:class:`~repro.chaos.NetworkFault`) become real socket misbehaviour —
aborted connections, stretched writes, torn NDJSON lines, 503s.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qs

from ..chaos import NetworkFault, chaos_point
from ..obs import metrics, tracer
from ..runtime.errors import SoundnessError
from .jobs import (
    JobRecord,
    JobSpec,
    JobSpecError,
    spec_deadline,
    spec_max_attempts,
)
from .pool import WorkerPool
from .resilience import (
    CANCEL_DEADLINE,
    CANCEL_DRAIN,
    CANCEL_USER,
    AttemptRecord,
    CancelScope,
    JobCancelled,
)

__all__ = ["ServiceConfig", "JobServer", "run_server"]

_TERMINAL = ("done", "failed", "cancelled")


@dataclass
class ServiceConfig:
    """Everything a control plane instance needs to run."""

    host: str = "127.0.0.1"
    port: int = 8736
    #: durable state root: job records under ``jobs/``, the shared query
    #: cache under ``cache/``, checkpoints under ``checkpoints/``
    state_dir: str = ".ccmatic-service"
    #: persistent workers serving portfolio rounds
    pool_size: int = 2
    #: per-worker memory cap (MiB)
    memory_mb: Optional[int] = None
    #: size cap of the shared on-disk query cache (MiB); None = unbounded
    max_cache_mb: Optional[float] = None
    #: recycle a pool worker after this many tasks
    max_tasks_per_worker: int = 64
    #: concurrent job executors over the shared pool
    executors: int = 2
    #: queued jobs beyond this are shed with 429 + Retry-After
    max_queue: int = 64
    #: Retry-After seconds suggested on 429/503 responses
    retry_after_s: float = 2.0
    #: running jobs hold a lease this long; renewed by the watchdog
    lease_duration: float = 15.0
    #: watchdog cadence (lease renewal + deadline enforcement), seconds
    watchdog_interval: float = 1.0
    #: graceful-drain budget before in-flight jobs are re-queued
    drain_grace: float = 30.0
    #: per-job event ring buffer (cursor-resumable stream tail)
    event_buffer: int = 512
    #: idle-worker heartbeat timeout (WorkerPool.probe)
    probe_timeout: float = 1.0
    #: worker warm-up call timeout (WorkerPool prime)
    prime_timeout: float = 60.0

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.state_dir, "cache")

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.state_dir, "jobs")

    @property
    def checkpoints_dir(self) -> str:
        return os.path.join(self.state_dir, "checkpoints")


def _prime_worker():
    """Warm a fresh pool worker: import the heavy modules once.

    Runs inside the child.  Importing the verifier stack populates the
    module cache and the term-interning machinery, so the first real
    task does not pay cold-import cost.
    """
    from ..core import verifier as _verifier  # noqa: F401
    from ..smt import compile as _compile  # noqa: F401


@dataclass
class _Execution:
    """Live bookkeeping of one running job attempt (in-memory only)."""

    cancel: CancelScope
    attempt: AttemptRecord
    started_wall: float
    deadline_s: Optional[float] = None


class JobServer:
    """One control-plane instance (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.jobs: dict[str, JobRecord] = {}
        self.pool = WorkerPool(
            size=self.config.pool_size,
            memory_mb=self.config.memory_mb,
            max_tasks_per_worker=self.config.max_tasks_per_worker,
            prime=(_prime_worker, (), {}),
            probe_timeout=self.config.probe_timeout,
            prime_timeout=self.config.prime_timeout,
        )
        self._queue: asyncio.Queue[Optional[str]] = asyncio.Queue()
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        #: per-job ring buffer of emitted stream records (seq-stamped)
        self._event_logs: dict[str, deque] = {}
        self._event_seq: dict[str, int] = {}
        #: spec fingerprint -> job id (the dedup index)
        self._by_fingerprint: dict[str, str] = {}
        #: job id -> live execution state (cancel scope, deadline)
        self._running: dict[str, _Execution] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor_tasks: list[asyncio.Task] = []
        self._watchdog_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._shed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        os.makedirs(self.config.jobs_dir, exist_ok=True)
        os.makedirs(self.config.cache_dir, exist_ok=True)
        os.makedirs(self.config.checkpoints_dir, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        self._load_jobs()
        self.pool.start()
        self._executor_tasks = [
            asyncio.create_task(self._run_jobs(n))
            for n in range(max(1, self.config.executors))
        ]
        self._watchdog_task = asyncio.create_task(self._watchdog())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        tracer().event(
            "service.start",
            host=self.config.host,
            port=self.port,
            pool=self.config.pool_size,
            executors=self.config.executors,
            msg=f"[service] listening on {self.config.host}:{self.port} "
                f"({self.config.pool_size} pooled workers, "
                f"{self.config.executors} executors)",
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self.config.port

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # cancel in-flight jobs as a drain (they re-queue durably) and
        # unblock idle executors with one sentinel each
        for ex in list(self._running.values()):
            ex.cancel.cancel(CANCEL_DRAIN)
        for _ in self._executor_tasks:
            self._queue.put_nowait(None)
        if self._executor_tasks:
            done, pending = await asyncio.wait(
                self._executor_tasks,
                timeout=max(10.0, self.pool.kill_grace * 4),
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            for task in done:
                exc = task.exception()
                if exc is not None and not isinstance(exc, SoundnessError):
                    tracer().event(
                        "service.executor_error",
                        msg=f"[service] executor died: {exc}", error=str(exc),
                    )
            self._executor_tasks = []
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._watchdog_task = None
        # wake every stream so clients see the end of their job
        for queues in list(self._watchers.values()):
            for q in queues:
                q.put_nowait(None)
        self.pool.shutdown()
        tracer().event("service.stop", msg="[service] stopped")

    async def _drain_and_stop(self) -> None:
        """Graceful ``POST /shutdown``: admit nothing, finish in-flight
        work within ``drain_grace``, re-queue the rest, then stop."""
        self._draining = True
        for _ in self._executor_tasks:
            self._queue.put_nowait(None)
        deadline = time.monotonic() + self.config.drain_grace
        while self._running and time.monotonic() < deadline:
            await asyncio.sleep(0.1)
        for ex in list(self._running.values()):
            ex.cancel.cancel(CANCEL_DRAIN)
        grace = time.monotonic() + max(5.0, self.pool.kill_grace * 2)
        while self._running and time.monotonic() < grace:
            await asyncio.sleep(0.1)
        self._shutdown.set()

    # -- durable job store ---------------------------------------------------

    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.config.jobs_dir, f"{job_id}.json")

    def _persist(self, record: JobRecord) -> None:
        data = json.dumps(record.to_json())
        fd, tmp = tempfile.mkstemp(dir=self.config.jobs_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(data)
        os.replace(tmp, self._record_path(record.job_id))

    def _load_jobs(self) -> None:
        try:
            names = sorted(os.listdir(self.config.jobs_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.config.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as f:
                    record = JobRecord.from_json(json.load(f))
            except (OSError, ValueError, KeyError, JobSpecError):
                continue  # a torn or foreign file is not a job
            self.jobs[record.job_id] = record
            if record.state == "running":
                # the previous process died mid-attempt: its lease is
                # stale by definition.  Close the interrupted attempt
                # honestly and re-queue, bounded by max_attempts.
                record.attempt_history.append({
                    "attempt": record.attempts,
                    "started_at": record.started_at,
                    "ended_at": None,
                    "outcome": "lease-expired",
                    "detail": "server died mid-attempt; lease not renewed",
                })
                record.lease_expires_at = None
                record.started_at = None
                if record.attempts >= spec_max_attempts(record.spec):
                    record.state = "failed"
                    record.error = (
                        f"gave up after {record.attempts} interrupted "
                        f"attempts (see attempt_history)"
                    )
                    record.finished_at = time.time()
                    self._persist(record)
                else:
                    record.state = "queued"
                    self._persist(record)
                    self._queue.put_nowait(record.job_id)
            elif record.state == "queued":
                self._persist(record)
                self._queue.put_nowait(record.job_id)
        # rebuild the dedup index; a live claim beats a terminal one
        for record in self.jobs.values():
            fp = record.spec.fingerprint()
            if record.state in ("queued", "running", "done"):
                self._by_fingerprint[fp] = record.job_id

    # -- job execution -------------------------------------------------------

    async def _run_jobs(self, executor_no: int) -> None:
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return  # drain sentinel
            if self._draining:
                # leave the id queued durably; a restart picks it up
                continue
            record = self.jobs.get(job_id)
            if record is None or record.state != "queued":
                continue  # cancelled (or foreign) while queued
            await self._execute_one(record)

    async def _execute_one(self, record: JobRecord) -> None:
        job_id = record.job_id
        record.state = "running"
        record.started_at = time.time()
        record.attempts += 1
        record.lease_expires_at = time.time() + self.config.lease_duration
        attempt = AttemptRecord(attempt=record.attempts)
        execution = _Execution(
            cancel=CancelScope(),
            attempt=attempt,
            started_wall=time.monotonic(),
            deadline_s=spec_deadline(record.spec),
        )
        self._running[job_id] = execution
        self._persist(record)
        self._notify(job_id, {"type": "job", "state": "running",
                              "job_id": job_id,
                              "attempt": record.attempts})
        loop = asyncio.get_running_loop()

        def _progress(rec: dict, job_id=job_id) -> None:
            # called from the executor thread: hop to the loop
            loop.call_soon_threadsafe(self._notify, job_id, rec)

        try:
            result = await asyncio.to_thread(
                self._execute, record, _progress, execution.cancel
            )
            record.result = result
            record.state = "done"
            record.error = None
            record.attempt_history.append(attempt.close("done").to_json())
        except JobCancelled as exc:
            self._handle_cancelled(record, attempt, exc.reason)
            return
        except SoundnessError as exc:
            # a soundness failure is loud everywhere: the job fails
            # AND the server refuses further work (something is
            # wrong with the engine, not with this one spec)
            record.state = "failed"
            record.error = f"SoundnessError: {exc}"
            record.attempt_history.append(
                attempt.close("failed", record.error).to_json()
            )
            self._finish(record)
            self._shutdown.set()
            raise
        except Exception as exc:  # noqa: BLE001 - job-level fault barrier
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
            record.attempt_history.append(
                attempt.close("failed", record.error).to_json()
            )
        finally:
            self._running.pop(job_id, None)
        self._finish(record)

    def _handle_cancelled(
        self, record: JobRecord, attempt: AttemptRecord, reason: str
    ) -> None:
        """Route a cancelled attempt by *why* it was cancelled."""
        job_id = record.job_id
        self._running.pop(job_id, None)
        if reason == CANCEL_USER:
            record.state = "cancelled"
            record.attempt_history.append(
                attempt.close(CANCEL_USER, "cancelled by request").to_json()
            )
            self._finish(record)
            return
        detail = (
            f"exceeded wall-clock deadline "
            f"({spec_deadline(record.spec)}s)"
            if reason == CANCEL_DEADLINE else "server draining"
        )
        record.attempt_history.append(attempt.close(reason, detail).to_json())
        allowed = spec_max_attempts(record.spec)
        if reason == CANCEL_DEADLINE and record.attempts >= allowed:
            record.state = "failed"
            record.error = (
                f"gave up after {record.attempts}/{allowed} attempts: {detail}"
            )
            self._finish(record)
            return
        # deadline with attempts left, or drain: back to the queue
        record.state = "queued"
        record.started_at = None
        record.lease_expires_at = None
        self._persist(record)
        metrics().counter("service.requeues").inc()
        self._notify(job_id, {"type": "job", "state": "queued",
                              "job_id": job_id, "requeued": True,
                              "reason": reason,
                              "attempt": record.attempts})
        if not self._draining:
            self._queue.put_nowait(job_id)

    def _execute(self, record: JobRecord, progress, cancel) -> dict:
        from .jobs import execute_job

        checkpoint = None
        if record.spec.kind == "synthesize":
            checkpoint = os.path.join(
                self.config.checkpoints_dir, f"{record.job_id}.ckpt"
            )
        return execute_job(
            record.spec,
            pool=self.pool,
            cache_dir=self.config.cache_dir,
            checkpoint_path=checkpoint,
            progress=progress,
            cancel=cancel,
        )

    def _finish(self, record: JobRecord) -> None:
        record.finished_at = time.time()
        record.lease_expires_at = None
        self._persist(record)
        if record.state in ("failed", "cancelled"):
            # release the dedup claim: a failed spec may be resubmitted
            fp = record.spec.fingerprint()
            if self._by_fingerprint.get(fp) == record.job_id:
                del self._by_fingerprint[fp]
        if self.config.max_cache_mb is not None:
            # enforce the service-wide cache cap between jobs (the
            # executor-side caches track bytes; this applies the LRU cut)
            from ..engine.cache import QueryCache

            QueryCache(
                self.config.cache_dir, max_disk_mb=self.config.max_cache_mb
            )._maybe_evict()
        self._notify(
            record.job_id,
            {"type": "job", "state": record.state,
             "job_id": record.job_id, "error": record.error},
        )
        for q in self._watchers.pop(record.job_id, ()):  # close streams
            q.put_nowait(None)

    def _notify(self, job_id: str, record: dict) -> None:
        seq = self._event_seq.get(job_id, 0)
        self._event_seq[job_id] = seq + 1
        record = dict(record)
        record["seq"] = seq
        log = self._event_logs.get(job_id)
        if log is None:
            log = self._event_logs[job_id] = deque(
                maxlen=max(16, self.config.event_buffer)
            )
        log.append(record)
        for q in self._watchers.get(job_id, ()):
            q.put_nowait(record)

    async def _watchdog(self) -> None:
        """Renew running jobs' leases; cancel past-deadline attempts.

        The lease is the crash detector: it is renewed unconditionally
        while the executor thread is alive, so an *expired* lease is
        only ever observed by a freshly booted server — meaning the
        previous process died mid-attempt.  The wall-clock deadline is
        the runaway bound, enforced here through the job's CancelScope.
        """
        interval = max(0.05, self.config.watchdog_interval)
        while True:
            await asyncio.sleep(interval)
            now = time.time()
            mono = time.monotonic()
            for job_id, execution in list(self._running.items()):
                record = self.jobs.get(job_id)
                if record is None or record.state != "running":
                    continue
                record.lease_expires_at = now + self.config.lease_duration
                try:
                    self._persist(record)
                except OSError:
                    pass  # disk hiccup: renew on the next tick
                if (
                    execution.deadline_s is not None
                    and mono - execution.started_wall > execution.deadline_s
                ):
                    if execution.cancel.cancel(CANCEL_DEADLINE):
                        metrics().counter("service.deadline_cancels").inc()
                        tracer().event(
                            "service.deadline",
                            job=job_id,
                            msg=f"[service] job {job_id} exceeded "
                                f"{execution.deadline_s}s; cancelling",
                        )

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                chaos_point("service.accept")
            except NetworkFault as fault:
                if await self._misbehave_accept(fault, writer):
                    return
            await self._handle_request(reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request != dead server
            try:
                await _respond(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _misbehave_accept(self, fault: NetworkFault, writer) -> bool:
        """Turn an injected accept-path fault into wire misbehaviour.
        Returns True when the request must not be served."""
        if fault.kind == "slow_write":
            await asyncio.sleep(fault.delay)
            return False  # stretched, then served normally
        if fault.kind == "reject_503":
            await _respond(
                writer, 503, {"error": "chaos: service unavailable"},
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
            )
            return True
        # conn_reset / torn_stream: drop the connection on the floor
        _abort(writer)
        return True

    async def _handle_request(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await _respond(writer, 400, {"error": "malformed request line"})
            return
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        path, _, query = target.partition("?")
        await self._route(method, path, body, writer, parse_qs(query))

    async def _route(
        self, method: str, path: str, body: bytes, writer, params: dict,
    ) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            await _respond(writer, 200, {"ok": True})
        elif method == "GET" and parts == ["stats"]:
            await self._get_stats(writer)
        elif method == "GET" and parts == ["cache", "stats"]:
            await self._get_cache_stats(writer)
        elif method == "POST" and parts == ["shutdown"]:
            await _respond(writer, 200, {"ok": True, "state": "draining"})
            asyncio.get_running_loop().create_task(self._drain_and_stop())
        elif method == "POST" and parts == ["jobs"]:
            await self._post_job(body, writer)
        elif method == "GET" and parts == ["jobs"]:
            await _respond(writer, 200, {
                "jobs": [r.to_json(with_result=False)
                         for r in self.jobs.values()],
            })
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await self._get_job(parts[1], writer)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "GET" \
                and parts[2] == "result":
            await self._get_result(parts[1], writer)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "GET" \
                and parts[2] == "events":
            from_seq = None
            if params.get("from"):
                try:
                    from_seq = max(0, int(params["from"][0]))
                except ValueError:
                    from_seq = None
            await self._stream_events(parts[1], writer, from_seq)
        elif len(parts) == 3 and parts[0] == "jobs" and method == "POST" \
                and parts[2] == "cancel":
            await self._cancel_job(parts[1], writer)
        else:
            await _respond(writer, 404, {"error": f"no route {method} {path}"})

    # -- handlers ------------------------------------------------------------

    async def _post_job(self, body: bytes, writer) -> None:
        if self._draining:
            await _respond(
                writer, 503,
                {"error": "server is draining; resubmit elsewhere or later"},
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
            )
            return
        try:
            spec = JobSpec.from_json(json.loads(body.decode("utf-8")))
        except (ValueError, JobSpecError) as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        fingerprint = spec.fingerprint()
        existing_id = self._by_fingerprint.get(fingerprint)
        if existing_id is not None:
            existing = self.jobs.get(existing_id)
            if existing is not None and existing.state in (
                "queued", "running", "done",
            ):
                # identical spec, same computation: hand back the
                # existing job so client re-submits are idempotent
                await _respond(writer, 200, {
                    "job_id": existing.job_id,
                    "state": existing.state,
                    "spec_fingerprint": fingerprint,
                    "deduped": True,
                })
                return
        queued = sum(1 for r in self.jobs.values() if r.state == "queued")
        if queued >= self.config.max_queue:
            self._shed += 1
            metrics().counter("service.shed").inc()
            await _respond(
                writer, 429,
                {"error": f"queue full ({queued}/{self.config.max_queue}); "
                          f"retry after backoff"},
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
            )
            return
        record = JobRecord(spec=spec)
        self.jobs[record.job_id] = record
        self._by_fingerprint[fingerprint] = record.job_id
        self._persist(record)
        self._queue.put_nowait(record.job_id)
        tracer().event(
            "service.job_submitted", job=record.job_id, kind=spec.kind,
            msg=f"[service] job {record.job_id} queued ({spec.kind})",
        )
        await _respond(writer, 202, {
            "job_id": record.job_id,
            "state": record.state,
            "spec_fingerprint": fingerprint,
        })

    async def _get_job(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        await _respond(writer, 200, record.to_json(with_result=False))

    async def _get_result(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        if record.state == "done":
            await _respond(writer, 200, {"job_id": job_id,
                                         "result": record.result})
        elif record.state == "failed":
            await _respond(writer, 409, {"job_id": job_id, "state": "failed",
                                         "error": record.error})
        else:
            await _respond(writer, 409, {"job_id": job_id,
                                         "state": record.state,
                                         "error": "job is not finished"})

    async def _cancel_job(self, job_id: str, writer) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        if record.state == "queued":
            record.state = "cancelled"
            self._finish(record)
            await _respond(writer, 200, {"job_id": job_id,
                                         "state": "cancelled"})
        elif record.state == "running":
            execution = self._running.get(job_id)
            if execution is None:
                await _respond(writer, 409, {
                    "job_id": job_id, "state": record.state,
                    "error": "job is running but has no live execution",
                })
                return
            execution.cancel.cancel(CANCEL_USER)
            await _respond(writer, 202, {"job_id": job_id,
                                         "state": "cancelling"})
        else:
            await _respond(writer, 409, {
                "job_id": job_id, "state": record.state,
                "error": f"job already {record.state}",
            })

    async def _stream_events(
        self, job_id: str, writer, from_seq: Optional[int] = None,
    ) -> None:
        record = self.jobs.get(job_id)
        if record is None:
            await _respond(writer, 404, {"error": f"no job {job_id!r}"})
            return
        queue: asyncio.Queue = asyncio.Queue()
        terminal = record.state in _TERMINAL
        if not terminal:
            self._watchers.setdefault(job_id, []).append(queue)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        next_seq = 0
        try:
            if from_seq is None:
                # fresh stream: one synthetic current-state line first
                await self._write_stream_item(
                    writer,
                    {"type": "job", "state": record.state, "job_id": job_id},
                )
                next_seq = self._event_seq.get(job_id, 0)
            else:
                # cursor resume: replay the buffered tail
                current = self._event_seq.get(job_id, 0)
                if from_seq > current:
                    # cursor from a previous server incarnation (the
                    # sequence restarted at boot): replay from the top
                    from_seq = 0
                log = list(self._event_logs.get(job_id, ()))
                first = log[0]["seq"] if log else current
                if from_seq < first:
                    await self._write_stream_item(
                        writer,
                        {"type": "gap", "job_id": job_id,
                         "missing_from": from_seq,
                         "resume_at": first},
                    )
                next_seq = from_seq
                replayed = False
                for item in log:
                    if item["seq"] >= from_seq:
                        await self._write_stream_item(writer, item)
                        next_seq = item["seq"] + 1
                        replayed = True
                if terminal and not (
                    replayed and log[-1].get("type") == "job"
                    and log[-1].get("state") in _TERMINAL
                ):
                    # buffer lost the closing record (or predates it):
                    # synthesize it so the client still sees the end
                    await self._write_stream_item(
                        writer,
                        {"type": "job", "state": record.state,
                         "job_id": job_id, "error": record.error},
                    )
            if terminal:
                return
            while True:
                item = await queue.get()
                if item is None:
                    break
                if item.get("seq", 0) < next_seq:
                    continue  # already replayed from the buffer
                await self._write_stream_item(writer, item)
        except NetworkFault:
            _abort(writer)  # torn_stream/conn_reset landed mid-stream
        finally:
            watchers = self._watchers.get(job_id)
            if watchers and queue in watchers:
                watchers.remove(queue)

    async def _write_stream_item(self, writer, item: dict) -> None:
        """One NDJSON line, via the ``service.stream`` chaos point."""
        line = _ndjson(item)
        try:
            chaos_point("service.stream")
        except NetworkFault as fault:
            if fault.kind == "slow_write":
                await asyncio.sleep(fault.delay)
            elif fault.kind == "torn_stream":
                # half a line, no newline, then a dead socket: the
                # client's resume cursor must cope
                writer.write(line[: max(1, len(line) // 2)])
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                raise
            else:
                raise  # conn_reset / reject_503: drop the stream
        writer.write(line)
        await writer.drain()

    async def _get_cache_stats(self, writer) -> None:
        from ..engine.cache import QueryCache, read_persisted_stats

        cache = QueryCache(self.config.cache_dir)
        payload = dict(read_persisted_stats(self.config.cache_dir))
        payload.update(cache.disk_usage())
        payload["cache_dir"] = self.config.cache_dir
        payload["max_cache_mb"] = self.config.max_cache_mb
        await _respond(writer, 200, payload)

    async def _get_stats(self, writer) -> None:
        states: dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        await _respond(writer, 200, {
            "jobs": states,
            "queued": states.get("queued", 0),
            "running": len(self._running),
            "executors": self.config.executors,
            "max_queue": self.config.max_queue,
            "shed": self._shed,
            "draining": self._draining,
            "pool": self.pool.stats.to_json(),
        })


def _ndjson(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def _abort(writer) -> None:
    """Hard-drop a connection (no FIN handshake: clients see a reset)."""
    transport = getattr(writer, "transport", None)
    if transport is not None:
        try:
            transport.abort()
        except Exception:  # noqa: BLE001 - already gone
            pass


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


async def _respond(
    writer, status: int, payload: dict,
    headers: Optional[dict] = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    torn = False
    delay = 0.0
    try:
        chaos_point("service.response")
    except NetworkFault as fault:
        if fault.kind == "conn_reset":
            _abort(writer)
            return
        if fault.kind == "reject_503":
            status, payload = 503, {"error": "chaos: service unavailable"}
            headers = dict(headers or {})
            headers.setdefault("Retry-After", "1")
            body = json.dumps(payload).encode("utf-8")
        elif fault.kind == "torn_stream":
            torn = True
        elif fault.kind == "slow_write":
            delay = fault.delay
    reason = _REASONS.get(status, "OK")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    if torn:
        # headers promise the full body; deliver half and vanish
        writer.write(head + body[: max(1, len(body) // 2)])
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        _abort(writer)
        return
    if delay > 0:
        # stretch the response over the delay in a few chunks
        writer.write(head)
        step = max(1, len(body) // 4)
        for i in range(0, len(body), step):
            writer.write(body[i:i + step])
            await writer.drain()
            await asyncio.sleep(delay / 4)
        return
    writer.write(head + body)
    await writer.drain()


def run_server(config: Optional[ServiceConfig] = None) -> None:
    """Blocking entry point (the ``ccmatic serve`` body).

    Honours ``REPRO_CHAOS``, like pool workers do: a chaos experiment
    targeting the network injection points arms the *server* process
    (scripts/service_chaos_smoke.py drives a real serve through it).
    """
    from ..chaos import maybe_install_from_env

    maybe_install_from_env()

    async def _main() -> None:
        server = JobServer(config)
        await server.start()
        print(f"ccmatic service on http://{server.config.host}:{server.port} "
              f"(state: {server.config.state_dir})", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
