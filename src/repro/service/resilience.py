"""Overload-and-failure survival policies for the control plane.

This module holds the primitives PR 10 threads through the whole
service stack — they are deliberately tiny, because each one is shared
by several layers that must agree on its semantics:

* :class:`CancelScope` — one job's cancellation token.  The server's
  watchdog (wall-clock deadline), the ``POST /jobs/<id>/cancel``
  handler, and the drain path all ``cancel()`` it with a *reason*; the
  :class:`~repro.service.pool.WorkerPool` polls it inside
  ``run_batch`` and converts it into SIGUSR1 on the busy lanes plus a
  :class:`JobCancelled` raised in the executor thread.  The reason
  decides what the server does next: a user cancel is terminal, a
  deadline cancel re-queues (bounded by the spec's ``max_attempts``),
  a drain cancel re-queues without judgement.

* :class:`JobCancelled` — the exception that unwinds a cancelled job's
  executor thread.  It derives from ``BaseException`` for the same
  reason :class:`~repro.runtime.workers.TaskCancelled` does: job code
  that catches ``Exception`` (retry loops, advisory telemetry) must
  not be able to swallow a cancellation.

* :class:`RetryPolicy` — the client-side retry/backoff contract:
  full-jitter exponential backoff (reusing
  :func:`repro.chaos.full_jitter_backoff`) on connection faults and on
  429/503 responses, honouring a server-provided ``Retry-After``.

* :class:`AttemptRecord` — one entry of a job's attempt history: when
  it started, how it ended, why.  Persisted in the v2
  :class:`~repro.service.jobs.JobRecord` so a job that was re-queued
  and finally failed carries the honest story of every attempt.

Why re-queueing is safe at all: a JobSpec is a *pure description* — no
attempt mutates it — and result payloads fingerprint their semantic
content, so a duplicate execution is detectable (equal fingerprints)
rather than harmful.  See DESIGN "Why re-queue is safe".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from ..chaos.supervisor import full_jitter_backoff

__all__ = [
    "AttemptRecord",
    "CancelScope",
    "JobCancelled",
    "RetryPolicy",
    "CANCEL_USER",
    "CANCEL_DEADLINE",
    "CANCEL_DRAIN",
]

#: cancellation reasons with distinct server-side consequences
CANCEL_USER = "user"          # POST /jobs/<id>/cancel -> terminal "cancelled"
CANCEL_DEADLINE = "deadline"  # watchdog: wall clock exceeded -> re-queue/fail
CANCEL_DRAIN = "drain"        # graceful shutdown -> re-queue, no judgement


class JobCancelled(BaseException):
    """Unwinds a cancelled job's executor thread (carries the reason)."""

    def __init__(self, reason: str = CANCEL_USER):
        self.reason = reason
        super().__init__(f"job cancelled ({reason})")


class CancelScope:
    """One job's cancellation token, shared across threads.

    ``cancel()`` is idempotent: the first reason wins, so a user cancel
    racing the deadline watchdog yields one consistent verdict.
    """

    def __init__(self):
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    def cancel(self, reason: str = CANCEL_USER) -> bool:
        """Request cancellation; returns True if this call won the race."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
                self._event.set()
                return True
            return False

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise JobCancelled(self._reason or CANCEL_USER)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry contract for transient control-plane faults.

    ``retries`` bounds the extra attempts after the first; the sleep
    before retry ``attempt`` (0-based) is the server's ``Retry-After``
    when it sent one, full-jitter exponential backoff otherwise.
    """

    retries: int = 3
    backoff_base: float = 0.2
    backoff_cap: float = 3.0
    #: response statuses that are retried (connection faults always are)
    retry_statuses: tuple = (429, 503)

    def delay(self, attempt: int, retry_after: Optional[float] = None,
              rng: Optional[Random] = None) -> float:
        if retry_after is not None and retry_after >= 0:
            return min(retry_after, self.backoff_cap)
        return full_jitter_backoff(
            self.backoff_base, attempt, cap=self.backoff_cap, rng=rng
        )


@dataclass
class AttemptRecord:
    """One execution attempt of a job (a row of its attempt history)."""

    attempt: int
    started_at: float = field(default_factory=time.time)
    ended_at: Optional[float] = None
    outcome: Optional[str] = None  # done|failed|user|deadline|drain|lease-expired
    detail: Optional[str] = None

    def close(self, outcome: str, detail: Optional[str] = None) -> "AttemptRecord":
        self.ended_at = time.time()
        self.outcome = outcome
        self.detail = detail
        return self

    def to_json(self) -> dict:
        return {
            "attempt": self.attempt,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "outcome": self.outcome,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: dict) -> "AttemptRecord":
        return cls(
            attempt=int(data.get("attempt", 0)),
            started_at=float(data.get("started_at", 0.0)),
            ended_at=data.get("ended_at"),
            outcome=data.get("outcome"),
            detail=data.get("detail"),
        )
