"""Persistent worker pool: fork once, serve many verification batches.

`run_portfolio` forks a fresh worker per candidate per batch.  The fork
itself is cheap on Linux, but everything a fresh child must rebuild is
not: the intern table is re-primed per task, every verifier re-encodes
the base CCAC network, and every solver starts with an empty learned
clause store.  A :class:`WorkerPool` keeps ``size`` long-lived workers
(:func:`repro.runtime.workers.spawn_pool_worker`) that boot once, run an
optional *prime* call (warm the intern table, import the heavy modules),
and then serve ``("task", ...)`` messages over their duplex pipes — so
per-candidate state like an incremental verifier session survives from
one batch to the next.

The pool mirrors :func:`repro.engine.portfolio.run_portfolio` semantics
batch-for-batch (same :class:`PortfolioOutcome`, same first-accepted
winner, same ``SoundnessError``/``WorkerError`` discipline), with three
pool-specific behaviours layered on top:

* **keep vs respawn** — a worker that dies mid-task (OOM-killed,
  SIGKILLed by an operator, crashed) is detected by its broken pipe,
  its in-flight task is *re-queued* onto a respawned worker (bounded by
  ``retries`` per task), and the batch continues.  Idle-worker health
  uses :func:`repro.runtime.workers.probe_worker` — the heartbeat that
  distinguishes "idle, keep" from "dead, respawn" — never
  ``reap_worker``, which always destroys.
* **cooperative cancellation** — losers get ``SIGUSR1`` (the child
  raises ``TaskCancelled`` between bytecodes; pure-Python solver code
  has no uninterruptible C loops), and only a worker that fails to
  acknowledge within ``kill_grace`` is killed and respawned.
* **recycling** — after ``max_tasks_per_worker`` tasks a worker is
  retired and replaced, bounding the memory growth that keeping the
  intern table warm otherwise permits.

Soundness note (see DESIGN "The control plane"): pooled tasks
deliberately skip the per-task ``interned_scope`` reset that one-shot
workers use, because warm state *is* the speedup.  A task that is
cancelled or errors clears its process-global verifier cache before the
worker serves the next task, so a half-popped solver session is never
reused — and the independent model validator still checks every verdict
regardless of which process produced it.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..engine.portfolio import PortfolioOutcome
from ..obs import DEBUG, metrics, tracer
from ..obs.flight import dump_flight
from ..obs.relay import TraceContext, merge_frame
from ..runtime.errors import SoundnessError, WorkerError
from ..runtime.workers import (
    WorkerReport,
    probe_worker,
    reap_worker,
    spawn_pool_worker,
)

__all__ = ["PoolStats", "WorkerPool"]

try:
    from multiprocessing.connection import wait as _wait_connections
except ImportError:  # pragma: no cover
    _wait_connections = None


@dataclass
class PoolStats:
    """Cumulative pool counters (exposed at the service ``/stats``)."""

    size: int = 0
    spawns: int = 0
    respawns: int = 0
    recycles: int = 0
    tasks_done: int = 0
    retries: int = 0
    cancelled: int = 0
    batches: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Lane:
    """One pool slot: a worker process plus its bookkeeping."""

    lane: int
    proc: Any
    conn: Any
    tasks_served: int = 0
    #: task token currently executing (None when idle)
    busy: Optional[str] = None
    epoch: int = field(default=0)


class WorkerPool:
    """``size`` persistent workers serving verification task batches."""

    def __init__(
        self,
        size: int = 2,
        memory_mb: Optional[int] = None,
        kill_grace: float = 1.0,
        max_tasks_per_worker: int = 64,
        retries: int = 1,
        prime: Optional[tuple] = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1 (got {size})")
        self.size = size
        self.memory_mb = memory_mb
        self.kill_grace = kill_grace
        self.max_tasks_per_worker = max_tasks_per_worker
        self.retries = retries
        self.stats = PoolStats(size=size)
        self._lanes: list[_Lane] = []
        self._prime = prime  # (fn, args, kwargs) run on every new worker
        self._batch_seq = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._lanes = [self._spawn(lane) for lane in range(self.size)]
        self._started = True
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def set_prime(self, fn, args=(), kwargs=None) -> None:
        """Warm-up call executed once on each (re)spawned worker."""
        self._prime = (fn, tuple(args), dict(kwargs or {}))
        if self._started:
            for lane in self._lanes:
                if lane.busy is None:
                    self._prime_lane(lane)

    def shutdown(self) -> None:
        """Stop every worker: polite shutdown for idle, cancel for busy."""
        if not self._started:
            return
        for lane in self._lanes:
            if lane.busy is not None:
                self._signal_cancel(lane)
            try:
                lane.conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + max(self.kill_grace, 0.1)
        for lane in self._lanes:
            lane.proc.join(max(0.0, deadline - time.monotonic()))
        for lane in self._lanes:
            reap_worker(lane.proc, lane.conn, self.kill_grace)
        self._lanes = []
        self._started = False

    def probe(self, timeout: float = 1.0) -> dict[int, str]:
        """Heartbeat every idle lane; respawn the dead, keep the idle.

        Busy lanes are judged by ``proc.is_alive()`` only — a worker deep
        in an exact-arithmetic pivot legitimately ignores its pipe.
        """
        verdicts: dict[int, str] = {}
        for i, lane in enumerate(self._lanes):
            if lane.busy is not None:
                verdicts[lane.lane] = "busy" if lane.proc.is_alive() else "dead"
                continue
            verdicts[lane.lane] = probe_worker(lane.proc, lane.conn, timeout)
        for i, lane in enumerate(list(self._lanes)):
            if verdicts[lane.lane] in ("dead", "stuck") and lane.busy is None:
                reap_worker(lane.proc, lane.conn, self.kill_grace)
                self._lanes[i] = self._spawn(lane.lane, respawn=True)
        return verdicts

    # -- batch execution -----------------------------------------------------

    def run_batch(
        self,
        tasks: Sequence[tuple],
        *,
        accept: Optional[Callable[[Any], bool]] = None,
        wall_time: Optional[float] = None,
    ) -> PortfolioOutcome:
        """Run ``tasks`` (``(fn, args)`` / ``(fn, args, kwargs)``) across
        the pool; first accepted result wins, mirroring
        :func:`~repro.engine.portfolio.run_portfolio`.

        Pass ``accept=lambda r: False`` to wait for *every* task (no
        winner, all results in ``outcome.reports``).  Raises
        :class:`SoundnessError` from any worker immediately and
        :class:`WorkerError` when every task errored.
        """
        if not self._started:
            self.start()
        self._accept_fn = accept or (lambda _result: True)
        tr = tracer()
        start = time.perf_counter()
        deadline = None if wall_time is None else start + wall_time
        self._batch_seq += 1
        self.stats.batches += 1
        outcome = PortfolioOutcome(winner=None, result=None, cancelled=[])
        queue: deque[int] = deque(range(len(tasks)))
        attempts = {i: 0 for i in range(len(tasks))}
        tokens: dict[str, int] = {}  # live token -> task index

        def _token(i: int) -> str:
            t = f"b{self._batch_seq}:{i}:a{attempts[i]}"
            tokens[t] = i
            return t

        with tr.span(
            "service.pool.batch", size=len(tasks), pool=self.size
        ) as span:
            anchor = getattr(span, "span_id", None)
            anchor_depth = getattr(span, "depth", 0)
            try:
                while outcome.winner is None:
                    self._dispatch(queue, tasks, attempts, _token)
                    busy = [ln for ln in self._lanes if ln.busy is not None]
                    if not busy and not queue:
                        break  # everything judged
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - time.perf_counter()
                        if timeout <= 0:
                            break
                    if not busy:
                        continue  # dispatch again (fresh respawns)
                    ready = _wait_connections(
                        [ln.conn for ln in busy],
                        timeout=timeout,
                    )
                    if not ready:
                        break  # batch-level timeout
                    by_conn = {ln.conn: ln for ln in busy}
                    for conn in ready:
                        lane = by_conn[conn]
                        if self._consume(
                            lane, tokens, queue, attempts, outcome, start,
                            anchor, anchor_depth,
                        ):
                            break  # winner accepted
                # losers: anything queued or in flight when the race ended
                if outcome.winner is not None:
                    self._cancel_busy(outcome, tokens)
                    for i in queue:
                        outcome.cancelled.append(i)
                else:
                    self._cancel_busy(outcome, tokens, as_timeout=wall_time)
                    for i in queue:
                        outcome.reports[i] = WorkerReport(
                            status="timeout",
                            detail=(
                                f"pool batch exceeded {wall_time:.1f}s"
                                if wall_time else "timeout"
                            ),
                        )
            finally:
                self._recycle_idle()
            for i, frames in sorted(outcome.telemetry.items()):
                for frame in frames:
                    merge_frame(
                        frame, anchor_span=anchor, anchor_depth=anchor_depth
                    )
            span.set(
                winner=outcome.winner,
                relayed=sum(len(f) for f in outcome.telemetry.values()),
            )
        outcome.cancelled = sorted(set(outcome.cancelled))
        outcome.wall_time = time.perf_counter() - start
        self.stats.cancelled += len(outcome.cancelled)
        metrics().counter("service.pool.batches").inc()
        if outcome.winner is None and outcome.reports and all(
            r.status == "error" for r in outcome.reports.values()
        ):
            raise WorkerError(
                "; ".join(r.detail for r in outcome.reports.values())
            )
        return outcome

    # -- internals -----------------------------------------------------------

    def _spawn(self, lane_no: int, respawn: bool = False) -> _Lane:
        proc, conn = spawn_pool_worker(
            self.memory_mb,
            trace_ctx=TraceContext.current(worker_id=f"p{lane_no}"),
        )
        self.stats.spawns += 1
        if respawn:
            self.stats.respawns += 1
            metrics().counter("service.pool.respawns").inc()
        lane = _Lane(lane=lane_no, proc=proc, conn=conn)
        self._prime_lane(lane)
        return lane

    def _prime_lane(self, lane: _Lane, timeout: float = 60.0) -> None:
        if self._prime is None:
            return
        fn, args, kwargs = self._prime
        try:
            lane.conn.send(("prime", fn, args, kwargs))
        except (OSError, ValueError, BrokenPipeError):
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if not lane.conn.poll(deadline - time.monotonic()):
                    break
                msg = lane.conn.recv()
            except (EOFError, OSError):
                break
            if isinstance(msg, tuple) and msg and msg[0] == "primed":
                if msg[1]:
                    tracer().event(
                        "service.pool.prime_failed", level=DEBUG,
                        lane=lane.lane, detail=msg[1],
                    )
                return
            # stale telemetry/pong from a previous life: drop it

    def _dispatch(self, queue, tasks, attempts, make_token) -> None:
        """Hand queued tasks to idle lanes (respawning dead idles)."""
        for i, lane in enumerate(self._lanes):
            if not queue:
                return
            if lane.busy is not None:
                continue
            if not lane.proc.is_alive():
                reap_worker(lane.proc, lane.conn, self.kill_grace)
                lane = self._lanes[i] = self._spawn(lane.lane, respawn=True)
            idx = queue.popleft()
            task = tasks[idx]
            fn, args = task[0], task[1]
            kwargs = task[2] if len(task) > 2 else None
            token = make_token(idx)
            try:
                lane.conn.send(("task", token, fn, args, kwargs))
            except (OSError, ValueError, BrokenPipeError):
                # died between the liveness check and the send; retry the
                # task on a fresh worker next dispatch round
                queue.appendleft(idx)
                reap_worker(lane.proc, lane.conn, self.kill_grace)
                self._lanes[i] = self._spawn(lane.lane, respawn=True)
                continue
            lane.busy = token

    def _consume(
        self, lane, tokens, queue, attempts, outcome, start,
        anchor, anchor_depth,
    ) -> bool:
        """Read one message from a busy lane.  True = winner accepted."""
        try:
            msg = lane.conn.recv()
        except (EOFError, OSError):
            self._lane_died(lane, tokens, queue, attempts, outcome)
            return False
        if not isinstance(msg, tuple) or not msg:
            return False
        if msg[0] == "telemetry" and len(msg) == 2:
            idx = tokens.get(lane.busy)
            if idx is not None:
                outcome.telemetry.setdefault(idx, []).append(msg[1])
            return False
        if msg[0] == "pong" or len(msg) != 3:
            return False  # stale heartbeat / late prime ack
        status, token, payload = msg
        idx = tokens.pop(token, None)
        lane.busy = None
        lane.tasks_served += 1
        self.stats.tasks_done += 1
        if idx is None:
            return False  # stale result from a cancelled epoch
        if status == "soundness":
            for frames in outcome.telemetry.values():
                for frame in frames:
                    merge_frame(
                        frame, anchor_span=anchor, anchor_depth=anchor_depth
                    )
            outcome.telemetry.clear()
            dump_flight("soundness")
            self._cancel_busy(outcome, tokens)
            raise SoundnessError(payload)
        if status == "ok":
            outcome.reports[idx] = WorkerReport(
                status="ok", result=payload,
                wall_time=time.perf_counter() - start,
            )
            if outcome.winner is None and self._accept(payload):
                outcome.winner = idx
                outcome.result = payload
                return True
            return False
        if status == "oom":
            # the worker survived (MemoryError caught in-child) but its
            # warm state is suspect: retire it
            outcome.reports[idx] = WorkerReport(
                status="oom", detail=str(payload),
                wall_time=time.perf_counter() - start,
            )
            self._retire(lane)
            return False
        outcome.reports[idx] = WorkerReport(
            status="cancelled" if status == "cancelled" else "error",
            detail=str(payload),
            wall_time=time.perf_counter() - start,
        )
        return False

    def _lane_died(self, lane, tokens, queue, attempts, outcome) -> None:
        """Broken pipe mid-task: respawn the lane, re-queue its task."""
        token = lane.busy
        idx = tokens.pop(token, None) if token else None
        i = self._lanes.index(lane)
        exitcode = lane.proc.exitcode
        reap_worker(lane.proc, lane.conn, self.kill_grace)
        self._lanes[i] = self._spawn(lane.lane, respawn=True)
        if idx is None:
            return
        attempts[idx] += 1
        if attempts[idx] <= self.retries:
            self.stats.retries += 1
            metrics().counter("service.pool.task_retries").inc()
            queue.append(idx)
        else:
            outcome.reports[idx] = WorkerReport(
                status="crash",
                detail=(
                    f"worker died {attempts[idx]} times on this task "
                    f"(last exit code {exitcode})"
                ),
            )

    def _signal_cancel(self, lane) -> None:
        try:
            os.kill(lane.proc.pid, signal.SIGUSR1)
        except (ProcessLookupError, OSError):
            pass

    def _cancel_busy(self, outcome, tokens, as_timeout=None) -> None:
        """Cancel in-flight tasks; keep workers that acknowledge."""
        busy = [ln for ln in self._lanes if ln.busy is not None]
        for lane in busy:
            self._signal_cancel(lane)
        deadline = time.monotonic() + max(self.kill_grace, 0.1)
        for lane in busy:
            idx = tokens.pop(lane.busy, None)
            acked = self._await_ack(lane, outcome, idx, deadline)
            if idx is not None:
                if as_timeout is not None:
                    outcome.reports[idx] = WorkerReport(
                        status="timeout",
                        detail=f"pool batch exceeded {as_timeout:.1f}s"
                        if as_timeout else "timeout",
                    )
                else:
                    outcome.cancelled.append(idx)
            if not acked:
                i = self._lanes.index(lane)
                reap_worker(lane.proc, lane.conn, self.kill_grace)
                self._lanes[i] = self._spawn(lane.lane, respawn=True)
            else:
                lane.busy = None
                lane.tasks_served += 1

    def _await_ack(self, lane, outcome, idx, deadline) -> bool:
        """Wait for the cancelled task's final message (telemetry kept)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                if not lane.conn.poll(remaining):
                    return False
                msg = lane.conn.recv()
            except (EOFError, OSError):
                return False
            if not isinstance(msg, tuple) or not msg:
                continue
            if msg[0] == "telemetry" and len(msg) == 2:
                if idx is not None:
                    outcome.telemetry.setdefault(idx, []).append(msg[1])
                continue
            if msg[0] == "pong":
                continue
            if len(msg) == 3 and msg[1] == lane.busy:
                return True  # final status (cancelled/ok/error), discarded
            # anything else: stale, keep draining

    def _retire(self, lane) -> None:
        i = self._lanes.index(lane)
        reap_worker(lane.proc, lane.conn, self.kill_grace)
        self._lanes[i] = self._spawn(lane.lane, respawn=True)
        self.stats.recycles += 1

    def _recycle_idle(self) -> None:
        """Replace idle lanes that served their max task quota."""
        for i, lane in enumerate(self._lanes):
            if lane.busy is None and lane.tasks_served >= self.max_tasks_per_worker:
                reap_worker(lane.proc, lane.conn, self.kill_grace)
                self._lanes[i] = self._spawn(lane.lane)
                self.stats.recycles += 1
                metrics().counter("service.pool.recycles").inc()

    # run_batch stores accept here so _consume can reach it without
    # threading it through every call
    def _accept(self, payload) -> bool:
        return self._accept_fn(payload)
