"""Persistent worker pool: fork once, serve many verification batches.

`run_portfolio` forks a fresh worker per candidate per batch.  The fork
itself is cheap on Linux, but everything a fresh child must rebuild is
not: the intern table is re-primed per task, every verifier re-encodes
the base CCAC network, and every solver starts with an empty learned
clause store.  A :class:`WorkerPool` keeps ``size`` long-lived workers
(:func:`repro.runtime.workers.spawn_pool_worker`) that boot once, run an
optional *prime* call (warm the intern table, import the heavy modules),
and then serve ``("task", ...)`` messages over their duplex pipes — so
per-candidate state like an incremental verifier session survives from
one batch to the next.

The pool mirrors :func:`repro.engine.portfolio.run_portfolio` semantics
batch-for-batch (same :class:`PortfolioOutcome`, same first-accepted
winner, same ``SoundnessError``/``WorkerError`` discipline), with three
pool-specific behaviours layered on top:

* **keep vs respawn** — a worker that dies mid-task (OOM-killed,
  SIGKILLed by an operator, crashed) is detected by its broken pipe,
  its in-flight task is *re-queued* onto a respawned worker (bounded by
  ``retries`` per task), and the batch continues.  Idle-worker health
  uses :func:`repro.runtime.workers.probe_worker` — the heartbeat that
  distinguishes "idle, keep" from "dead, respawn" — never
  ``reap_worker``, which always destroys.
* **cooperative cancellation** — losers get ``SIGUSR1`` (the child
  raises ``TaskCancelled`` between bytecodes; pure-Python solver code
  has no uninterruptible C loops), and only a worker that fails to
  acknowledge within ``kill_grace`` is killed and respawned.
* **recycling** — after ``max_tasks_per_worker`` tasks a worker is
  retired and replaced, bounding the memory growth that keeping the
  intern table warm otherwise permits.

Concurrency (PR 10): the pool is shared by N server executor threads,
so batches *lease* lanes.  ``run_batch`` takes as many idle lanes as it
can use (blocking until at least one is free), works exclusively on
that leased set, and releases the lanes at the end — two concurrent
batches never touch the same worker, and the only synchronisation is
the lease hand-off under one condition variable.  Slow operations
(spawn, prime, reap, pipe waits) all happen on exclusively-held lanes,
outside the lock.

Cancellation from *outside* the batch rides the same path: a
:class:`~repro.service.resilience.CancelScope` — passed as
``run_batch(..., cancel=...)`` or bound to the calling thread via
:meth:`bind_cancel` so callers deep inside the synthesis stack inherit
it — is polled every ``_POLL_TICK``; once fired, in-flight tasks get
the SIGUSR1 treatment and the batch raises
:class:`~repro.service.resilience.JobCancelled` with the scope's
reason.

Soundness note (see DESIGN "The control plane"): pooled tasks
deliberately skip the per-task ``interned_scope`` reset that one-shot
workers use, because warm state *is* the speedup.  A task that is
cancelled or errors clears its process-global verifier cache before the
worker serves the next task, so a half-popped solver session is never
reused — and the independent model validator still checks every verdict
regardless of which process produced it.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..engine.portfolio import PortfolioOutcome
from ..obs import DEBUG, metrics, tracer
from ..obs.flight import dump_flight
from ..obs.relay import TraceContext, merge_frame
from ..runtime.errors import SoundnessError, WorkerError
from ..runtime.workers import (
    WorkerReport,
    probe_worker,
    reap_worker,
    spawn_pool_worker,
)
from .resilience import CANCEL_DRAIN, CancelScope, JobCancelled

__all__ = ["PoolStats", "WorkerPool"]

try:
    from multiprocessing.connection import wait as _wait_connections
except ImportError:  # pragma: no cover
    _wait_connections = None

#: cancel/close re-check cadence while waiting on worker pipes, seconds
_POLL_TICK = 0.25


@dataclass
class PoolStats:
    """Cumulative pool counters (exposed at the service ``/stats``)."""

    size: int = 0
    spawns: int = 0
    respawns: int = 0
    recycles: int = 0
    tasks_done: int = 0
    retries: int = 0
    cancelled: int = 0
    batches: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Lane:
    """One pool slot: a worker process plus its bookkeeping."""

    lane: int
    proc: Any
    conn: Any
    tasks_served: int = 0
    #: task token currently executing (None when idle)
    busy: Optional[str] = None
    #: held exclusively by one batch/probe (guarded by the pool condition)
    leased: bool = False
    epoch: int = field(default=0)


class WorkerPool:
    """``size`` persistent workers serving verification task batches."""

    def __init__(
        self,
        size: int = 2,
        memory_mb: Optional[int] = None,
        kill_grace: float = 1.0,
        max_tasks_per_worker: int = 64,
        retries: int = 1,
        prime: Optional[tuple] = None,
        probe_timeout: float = 1.0,
        prime_timeout: float = 60.0,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1 (got {size})")
        self.size = size
        self.memory_mb = memory_mb
        self.kill_grace = kill_grace
        self.max_tasks_per_worker = max_tasks_per_worker
        self.retries = retries
        self.probe_timeout = probe_timeout
        self.prime_timeout = prime_timeout
        self.stats = PoolStats(size=size)
        self._lanes: list[_Lane] = []
        self._prime = prime  # (fn, args, kwargs) run on every new worker
        self._batch_seq = 0
        self._started = False
        self._closing = False
        self._cond = threading.Condition()
        #: thread ident -> CancelScope bound via bind_cancel()
        self._bound: dict[int, CancelScope] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._cond:
            if self._started:
                return self
            self._started = True
            self._closing = False
        lanes = [self._spawn(lane) for lane in range(self.size)]
        with self._cond:
            self._lanes = lanes
            self._cond.notify_all()
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def set_prime(self, fn, args=(), kwargs=None) -> None:
        """Warm-up call executed once on each (re)spawned worker."""
        self._prime = (fn, tuple(args), dict(kwargs or {}))
        if not self._started:
            return
        mine: list[_Lane] = []
        with self._cond:
            for lane in self._lanes:
                if not lane.leased:
                    lane.leased = True
                    mine.append(lane)
        try:
            for lane in mine:
                self._prime_lane(lane)
        finally:
            self._release(mine)

    def bind_cancel(self, scope: CancelScope) -> None:
        """Attach ``scope`` to the calling thread: every ``run_batch``
        issued from this thread (however deep in the call stack) polls it.
        """
        self._bound[threading.get_ident()] = scope

    def unbind_cancel(self) -> None:
        self._bound.pop(threading.get_ident(), None)

    def shutdown(self) -> None:
        """Stop every worker: polite shutdown for idle, cancel for busy.

        Concurrent batches abort on their next poll tick (they observe
        ``_closing`` and raise ``JobCancelled("drain")``).
        """
        with self._cond:
            if not self._started:
                return
            self._closing = True
            lanes = list(self._lanes)
            self._cond.notify_all()
        for lane in lanes:
            if lane.busy is not None:
                self._signal_cancel(lane)
            try:
                lane.conn.send(("shutdown",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + max(self.kill_grace, 0.1)
        for lane in lanes:
            lane.proc.join(max(0.0, deadline - time.monotonic()))
        for lane in lanes:
            reap_worker(lane.proc, lane.conn, self.kill_grace)
        with self._cond:
            self._lanes = []
            self._started = False
            self._closing = False
            self._cond.notify_all()

    def probe(self, timeout: Optional[float] = None) -> dict[int, str]:
        """Heartbeat every idle lane; respawn the dead, keep the idle.

        Lanes leased to a running batch are judged by ``proc.is_alive()``
        only — a worker deep in an exact-arithmetic pivot legitimately
        ignores its pipe.  ``timeout`` defaults to the pool's
        ``probe_timeout`` (threaded from ``ServiceConfig`` by the server).
        """
        if timeout is None:
            timeout = self.probe_timeout
        verdicts: dict[int, str] = {}
        mine: list[_Lane] = []
        with self._cond:
            for lane in self._lanes:
                if lane.leased:
                    verdicts[lane.lane] = (
                        "busy" if lane.proc.is_alive() else "dead"
                    )
                else:
                    lane.leased = True
                    mine.append(lane)
        try:
            for i, lane in enumerate(list(mine)):
                verdict = probe_worker(lane.proc, lane.conn, timeout)
                verdicts[lane.lane] = verdict
                if verdict in ("dead", "stuck"):
                    metrics().counter("service.pool.probe_respawns").inc()
                    mine[i] = self._replace_lane(lane)
        finally:
            self._release(mine)
        return verdicts

    # -- batch execution -----------------------------------------------------

    def run_batch(
        self,
        tasks: Sequence[tuple],
        *,
        accept: Optional[Callable[[Any], bool]] = None,
        wall_time: Optional[float] = None,
        cancel: Optional[CancelScope] = None,
    ) -> PortfolioOutcome:
        """Run ``tasks`` (``(fn, args)`` / ``(fn, args, kwargs)``) across
        the pool; first accepted result wins, mirroring
        :func:`~repro.engine.portfolio.run_portfolio`.

        Pass ``accept=lambda r: False`` to wait for *every* task (no
        winner, all results in ``outcome.reports``).  Raises
        :class:`SoundnessError` from any worker immediately and
        :class:`WorkerError` when every task errored.

        ``cancel`` (explicit, or bound to this thread via
        :meth:`bind_cancel`) is polled while the batch runs; once fired,
        in-flight tasks are SIGUSR1-cancelled and the batch raises
        :class:`JobCancelled` with the scope's reason.
        """
        if not self._started:
            self.start()
        if cancel is None:
            cancel = self._bound.get(threading.get_ident())
        accept_fn = accept or (lambda _result: True)
        tr = tracer()
        start = time.perf_counter()
        deadline = None if wall_time is None else start + wall_time
        with self._cond:
            self._batch_seq += 1
            batch_no = self._batch_seq
            self.stats.batches += 1
        outcome = PortfolioOutcome(winner=None, result=None, cancelled=[])
        queue: deque[int] = deque(range(len(tasks)))
        attempts = {i: 0 for i in range(len(tasks))}
        tokens: dict[str, int] = {}  # live token -> task index

        def _token(i: int) -> str:
            t = f"b{batch_no}:{i}:a{attempts[i]}"
            tokens[t] = i
            return t

        leased = self._lease(min(self.size, len(tasks)), cancel)
        timed_out = False
        with tr.span(
            "service.pool.batch", size=len(tasks), pool=self.size
        ) as span:
            anchor = getattr(span, "span_id", None)
            anchor_depth = getattr(span, "depth", 0)
            try:
                while outcome.winner is None:
                    if self._closing:
                        self._cancel_busy(leased, outcome, tokens)
                        raise JobCancelled(CANCEL_DRAIN)
                    if cancel is not None and cancel.cancelled:
                        self._cancel_busy(leased, outcome, tokens)
                        raise JobCancelled(cancel.reason or "user")
                    self._dispatch(leased, queue, tasks, _token)
                    busy = [ln for ln in leased if ln.busy is not None]
                    if not busy and not queue:
                        break  # everything judged
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            timed_out = True
                            break
                    if not busy:
                        continue  # dispatch again (fresh respawns)
                    tick = (
                        _POLL_TICK if remaining is None
                        else min(_POLL_TICK, remaining)
                    )
                    ready = _wait_connections(
                        [ln.conn for ln in busy], timeout=tick
                    )
                    if not ready:
                        continue  # poll tick: re-check cancel/deadline
                    by_conn = {ln.conn: ln for ln in busy}
                    for conn in ready:
                        lane = by_conn[conn]
                        if self._consume(
                            lane, leased, tokens, queue, attempts, outcome,
                            start, accept_fn, anchor, anchor_depth,
                        ):
                            break  # winner accepted
                # losers: anything queued or in flight when the race ended
                if outcome.winner is not None:
                    self._cancel_busy(leased, outcome, tokens)
                    for i in queue:
                        outcome.cancelled.append(i)
                elif timed_out:
                    self._cancel_busy(
                        leased, outcome, tokens, as_timeout=wall_time
                    )
                    for i in queue:
                        outcome.reports[i] = WorkerReport(
                            status="timeout",
                            detail=(
                                f"pool batch exceeded {wall_time:.1f}s"
                                if wall_time else "timeout"
                            ),
                        )
            finally:
                self._recycle_leased(leased)
                self._release(leased)
            for i, frames in sorted(outcome.telemetry.items()):
                for frame in frames:
                    merge_frame(
                        frame, anchor_span=anchor, anchor_depth=anchor_depth
                    )
            span.set(
                winner=outcome.winner,
                relayed=sum(len(f) for f in outcome.telemetry.values()),
            )
        outcome.cancelled = sorted(set(outcome.cancelled))
        outcome.wall_time = time.perf_counter() - start
        self.stats.cancelled += len(outcome.cancelled)
        metrics().counter("service.pool.batches").inc()
        if outcome.winner is None and outcome.reports and all(
            r.status == "error" for r in outcome.reports.values()
        ):
            raise WorkerError(
                "; ".join(r.detail for r in outcome.reports.values())
            )
        return outcome

    # -- lane leasing --------------------------------------------------------

    def _lease(self, want: int, cancel: Optional[CancelScope]) -> list[_Lane]:
        """Take up to ``want`` idle lanes (at least one; blocks for it)."""
        want = max(1, want)
        with self._cond:
            while True:
                if self._closing:
                    raise JobCancelled(CANCEL_DRAIN)
                if cancel is not None:
                    cancel.raise_if_cancelled()
                free = [ln for ln in self._lanes if not ln.leased]
                if free:
                    take = free[:want]
                    for ln in take:
                        ln.leased = True
                    return take
                self._cond.wait(_POLL_TICK)

    def _release(self, leased: list[_Lane]) -> None:
        with self._cond:
            for ln in leased:
                ln.leased = False
            self._cond.notify_all()

    def _replace_lane(self, lane: _Lane, respawn: bool = True) -> _Lane:
        """Reap an exclusively-held dead/condemned lane, spawn its successor
        (still leased), and swap it into the pool's lane table."""
        reap_worker(lane.proc, lane.conn, self.kill_grace)
        if self._closing:
            raise JobCancelled(CANCEL_DRAIN)
        fresh = self._spawn(lane.lane, respawn=respawn)
        fresh.leased = True
        with self._cond:
            try:
                self._lanes[self._lanes.index(lane)] = fresh
            except ValueError:  # pool shut down underneath us
                pass
        return fresh

    # -- internals -----------------------------------------------------------

    def _spawn(self, lane_no: int, respawn: bool = False) -> _Lane:
        proc, conn = spawn_pool_worker(
            self.memory_mb,
            trace_ctx=TraceContext.current(worker_id=f"p{lane_no}"),
        )
        self.stats.spawns += 1
        if respawn:
            self.stats.respawns += 1
            metrics().counter("service.pool.respawns").inc()
        lane = _Lane(lane=lane_no, proc=proc, conn=conn)
        self._prime_lane(lane)
        return lane

    def _prime_lane(self, lane: _Lane, timeout: Optional[float] = None) -> None:
        if self._prime is None:
            return
        if timeout is None:
            timeout = self.prime_timeout
        fn, args, kwargs = self._prime
        try:
            lane.conn.send(("prime", fn, args, kwargs))
        except (OSError, ValueError, BrokenPipeError):
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if not lane.conn.poll(deadline - time.monotonic()):
                    break
                msg = lane.conn.recv()
            except (EOFError, OSError):
                break
            if isinstance(msg, tuple) and msg and msg[0] == "primed":
                if msg[1]:
                    tracer().event(
                        "service.pool.prime_failed", level=DEBUG,
                        lane=lane.lane, detail=msg[1],
                    )
                return
            # stale telemetry/pong from a previous life: drop it

    def _dispatch(self, leased, queue, tasks, make_token) -> None:
        """Hand queued tasks to idle leased lanes (respawning dead idles)."""
        for i, lane in enumerate(leased):
            if not queue:
                return
            if lane.busy is not None:
                continue
            if not lane.proc.is_alive():
                lane = leased[i] = self._replace_lane(lane)
            idx = queue.popleft()
            task = tasks[idx]
            fn, args = task[0], task[1]
            kwargs = task[2] if len(task) > 2 else None
            token = make_token(idx)
            try:
                lane.conn.send(("task", token, fn, args, kwargs))
            except (OSError, ValueError, BrokenPipeError):
                # died between the liveness check and the send; retry the
                # task on a fresh worker next dispatch round
                queue.appendleft(idx)
                leased[i] = self._replace_lane(lane)
                continue
            lane.busy = token

    def _consume(
        self, lane, leased, tokens, queue, attempts, outcome, start,
        accept_fn, anchor, anchor_depth,
    ) -> bool:
        """Read one message from a busy lane.  True = winner accepted."""
        try:
            msg = lane.conn.recv()
        except (EOFError, OSError):
            self._lane_died(lane, leased, tokens, queue, attempts, outcome)
            return False
        if not isinstance(msg, tuple) or not msg:
            return False
        if msg[0] == "telemetry" and len(msg) == 2:
            idx = tokens.get(lane.busy)
            if idx is not None:
                outcome.telemetry.setdefault(idx, []).append(msg[1])
            return False
        if msg[0] == "pong" or len(msg) != 3:
            return False  # stale heartbeat / late prime ack
        status, token, payload = msg
        idx = tokens.pop(token, None)
        lane.busy = None
        lane.tasks_served += 1
        self.stats.tasks_done += 1
        if idx is None:
            return False  # stale result from a cancelled epoch
        if status == "soundness":
            for frames in outcome.telemetry.values():
                for frame in frames:
                    merge_frame(
                        frame, anchor_span=anchor, anchor_depth=anchor_depth
                    )
            outcome.telemetry.clear()
            dump_flight("soundness")
            self._cancel_busy(leased, outcome, tokens)
            raise SoundnessError(payload)
        if status == "ok":
            outcome.reports[idx] = WorkerReport(
                status="ok", result=payload,
                wall_time=time.perf_counter() - start,
            )
            if outcome.winner is None and accept_fn(payload):
                outcome.winner = idx
                outcome.result = payload
                return True
            return False
        if status == "oom":
            # the worker survived (MemoryError caught in-child) but its
            # warm state is suspect: retire it
            outcome.reports[idx] = WorkerReport(
                status="oom", detail=str(payload),
                wall_time=time.perf_counter() - start,
            )
            self._retire(lane, leased)
            return False
        outcome.reports[idx] = WorkerReport(
            status="cancelled" if status == "cancelled" else "error",
            detail=str(payload),
            wall_time=time.perf_counter() - start,
        )
        return False

    def _lane_died(self, lane, leased, tokens, queue, attempts, outcome) -> None:
        """Broken pipe mid-task: respawn the lane, re-queue its task."""
        token = lane.busy
        idx = tokens.pop(token, None) if token else None
        exitcode = lane.proc.exitcode
        leased[leased.index(lane)] = self._replace_lane(lane)
        if idx is None:
            return
        attempts[idx] += 1
        if attempts[idx] <= self.retries:
            self.stats.retries += 1
            metrics().counter("service.pool.task_retries").inc()
            queue.append(idx)
        else:
            outcome.reports[idx] = WorkerReport(
                status="crash",
                detail=(
                    f"worker died {attempts[idx]} times on this task "
                    f"(last exit code {exitcode})"
                ),
            )

    def _signal_cancel(self, lane) -> None:
        try:
            os.kill(lane.proc.pid, signal.SIGUSR1)
        except (ProcessLookupError, OSError):
            pass

    def _cancel_busy(self, leased, outcome, tokens, as_timeout=None) -> None:
        """Cancel in-flight tasks; keep workers that acknowledge."""
        busy = [ln for ln in leased if ln.busy is not None]
        for lane in busy:
            self._signal_cancel(lane)
        deadline = time.monotonic() + max(self.kill_grace, 0.1)
        for lane in busy:
            idx = tokens.pop(lane.busy, None)
            acked = self._await_ack(lane, outcome, idx, deadline)
            if idx is not None:
                if as_timeout is not None:
                    outcome.reports[idx] = WorkerReport(
                        status="timeout",
                        detail=f"pool batch exceeded {as_timeout:.1f}s"
                        if as_timeout else "timeout",
                    )
                else:
                    outcome.cancelled.append(idx)
            if not acked:
                leased[leased.index(lane)] = self._replace_lane(lane)
            else:
                lane.busy = None
                lane.tasks_served += 1

    def _await_ack(self, lane, outcome, idx, deadline) -> bool:
        """Wait for the cancelled task's final message (telemetry kept)."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                if not lane.conn.poll(remaining):
                    return False
                msg = lane.conn.recv()
            except (EOFError, OSError):
                return False
            if not isinstance(msg, tuple) or not msg:
                continue
            if msg[0] == "telemetry" and len(msg) == 2:
                if idx is not None:
                    outcome.telemetry.setdefault(idx, []).append(msg[1])
                continue
            if msg[0] == "pong":
                continue
            if len(msg) == 3 and msg[1] == lane.busy:
                return True  # final status (cancelled/ok/error), discarded
            # anything else: stale, keep draining

    def _retire(self, lane, leased) -> None:
        leased[leased.index(lane)] = self._replace_lane(lane)
        self.stats.recycles += 1

    def _recycle_leased(self, leased) -> None:
        """Replace leased-idle lanes that served their max task quota."""
        for i, lane in enumerate(leased):
            if lane.busy is None and lane.tasks_served >= self.max_tasks_per_worker:
                try:
                    leased[i] = self._replace_lane(lane, respawn=False)
                except JobCancelled:
                    return  # closing: shutdown() owns the cleanup now
                self.stats.recycles += 1
                metrics().counter("service.pool.recycles").inc()
