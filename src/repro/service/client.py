"""Blocking HTTP client for the control plane (stdlib ``http.client``).

The client half of ``ccmatic submit`` / ``status`` / ``result``: small
synchronous calls against a running :class:`~repro.service.server.JobServer`.
Progress streaming reads the NDJSON ``/jobs/<id>/events`` body
incrementally (one parsed record per line), so a watcher renders events
as the job produces them.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, Optional

from .jobs import JobSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-success response from the control plane."""

    def __init__(self, status: int, payload: dict):
        self.status = status
        self.payload = payload
        super().__init__(
            f"service returned {status}: "
            f"{payload.get('error', json.dumps(payload))}"
        )


class ServiceClient:
    """Talks to one ``host:port`` control plane."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8736,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = json.loads(resp.read().decode("utf-8") or "{}")
            if resp.status >= 400 or (resp.status == 409):
                raise ServiceError(resp.status, data)
            return data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ServiceError, ValueError):
            return False

    def submit(self, spec: JobSpec) -> dict:
        """Submit a spec; returns ``{job_id, state, spec_fingerprint}``."""
        return self._request("POST", "/jobs", spec.to_json())

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs").get("jobs", [])

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The result payload of a ``done`` job (raises otherwise)."""
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def cache_stats(self) -> dict:
        return self._request("GET", "/cache/stats")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream a job's NDJSON progress records until it finishes.

        The final yielded record has ``type == "job"`` with a terminal
        ``state`` — callers can stop rendering there.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                data = json.loads(resp.read().decode("utf-8") or "{}")
                raise ServiceError(resp.status, data)
            buffer = b""
            while True:
                chunk = resp.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue  # torn line at shutdown: skip
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job reaches a terminal state; returns its
        record.  Uses the event stream (no polling)."""
        for record in self.events(job_id, timeout=timeout):
            if record.get("type") == "job" and record.get("state") in (
                "done", "failed", "cancelled"
            ):
                break
        return self.status(job_id)
