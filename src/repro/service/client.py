"""Blocking HTTP client for the control plane (stdlib ``http.client``).

The client half of ``ccmatic submit`` / ``status`` / ``result``: small
synchronous calls against a running :class:`~repro.service.server.JobServer`.
Progress streaming reads the NDJSON ``/jobs/<id>/events`` body
incrementally (one parsed record per line), so a watcher renders events
as the job produces them.

Resilience (PR 10): requests retry with full-jitter backoff
(:class:`~repro.service.resilience.RetryPolicy`) on connection faults
and on 429/503 — honouring the server's ``Retry-After`` — because every
retried request is idempotent: submits dedup server-side by spec
fingerprint, reads are pure, cancels converge.  The event stream
reconnects mid-job using the per-record ``seq`` cursor
(``/jobs/<id>/events?from=N``), so a reset connection resumes where it
tore instead of starting over or losing records.
"""

from __future__ import annotations

import http.client
import json
import time
from random import Random
from typing import Iterator, Optional

from .jobs import JobSpec
from .resilience import RetryPolicy

__all__ = ["ServiceClient", "ServiceError"]

_TERMINAL = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """A non-success response from the control plane."""

    def __init__(self, status: int, payload: dict,
                 retry_after: Optional[float] = None):
        self.status = status
        self.payload = payload
        self.retry_after = retry_after
        super().__init__(
            f"service returned {status}: "
            f"{payload.get('error', json.dumps(payload))}"
        )


class ServiceClient:
    """Talks to one ``host:port`` control plane."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8736,
                 timeout: float = 30.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 retry_seed: Optional[int] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy()
        # seedable so chaos experiments replay the same retry schedule
        self._rng = Random(retry_seed)

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None, retry: bool = True) -> dict:
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if (
                    not retry
                    or exc.status not in policy.retry_statuses
                    or attempt >= policy.retries
                ):
                    raise
                delay = policy.delay(
                    attempt, retry_after=exc.retry_after, rng=self._rng
                )
            except (OSError, http.client.HTTPException):
                if not retry or attempt >= policy.retries:
                    raise
                delay = policy.delay(attempt, rng=self._rng)
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def _request_once(self, method: str, path: str,
                      body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read().decode("utf-8", "replace")
            retry_after = _parse_retry_after(resp.getheader("Retry-After"))
            try:
                data = json.loads(raw or "{}")
            except ValueError:
                # a torn or non-JSON body is a structured error, never a
                # JSONDecodeError leaking out of the client
                raise ServiceError(
                    resp.status,
                    {"error": "non-JSON response body", "body": raw[:200]},
                    retry_after=retry_after,
                )
            if resp.status >= 400:
                raise ServiceError(resp.status, data, retry_after=retry_after)
            return data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(
                self._request("GET", "/healthz", retry=False).get("ok")
            )
        except (OSError, ServiceError, ValueError):
            return False

    def submit(self, spec: JobSpec) -> dict:
        """Submit a spec; returns ``{job_id, state, spec_fingerprint}``.

        Safe to retry (and retried automatically): the server dedups by
        spec fingerprint, so a re-submit after a lost response returns
        the existing job (``deduped: true``) instead of a duplicate.
        """
        return self._request("POST", "/jobs", spec.to_json())

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs").get("jobs", [])

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The result payload of a ``done`` job (raises otherwise)."""
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def cache_stats(self) -> dict:
        return self._request("GET", "/cache/stats")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict:
        # deliberately not retried: a dropped response usually means the
        # drain already started
        return self._request("POST", "/shutdown", retry=False)

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream a job's NDJSON progress records until it finishes.

        The final yielded record has ``type == "job"`` with a terminal
        ``state`` — callers can stop rendering there.  A torn stream
        reconnects with ``?from=<cursor>`` and resumes at the first
        unseen record (a ``{"type": "gap"}`` line marks records the
        server's buffer lost); the stream gives up only after
        ``retry_policy.retries`` consecutive dead reconnects.
        """
        policy = self.retry_policy
        cursor: Optional[int] = None
        failures = 0
        while True:
            progressed = False
            try:
                for record in self._stream_once(job_id, cursor, timeout):
                    progressed = True
                    failures = 0
                    seq = record.get("seq")
                    if isinstance(seq, int):
                        cursor = seq + 1
                    yield record
                    if record.get("type") == "job" and \
                            record.get("state") in _TERMINAL:
                        return
            except ServiceError as exc:
                if exc.status not in policy.retry_statuses:
                    raise
            except (OSError, http.client.HTTPException, ValueError):
                pass  # torn mid-line or reset: reconnect from the cursor
            # stream ended without a terminal record
            if not progressed:
                failures += 1
                if failures > policy.retries:
                    return  # caller falls back to polling status()
            delay = policy.delay(max(0, failures - 1), rng=self._rng)
            if delay > 0:
                time.sleep(delay)
            if cursor is None:
                cursor = 0  # resume mode from here on

    def _stream_once(self, job_id: str, cursor: Optional[int],
                     timeout: Optional[float]) -> Iterator[dict]:
        path = f"/jobs/{job_id}/events"
        if cursor is not None:
            path += f"?from={cursor}"
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read().decode("utf-8", "replace")
                try:
                    data = json.loads(raw or "{}")
                except ValueError:
                    data = {"error": "non-JSON response body",
                            "body": raw[:200]}
                raise ServiceError(
                    resp.status, data,
                    retry_after=_parse_retry_after(
                        resp.getheader("Retry-After")
                    ),
                )
            buffer = b""
            while True:
                chunk = resp.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue  # torn line at shutdown: skip
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until the job reaches a terminal state; returns its
        record.  Uses the event stream (no polling)."""
        for record in self.events(job_id, timeout=timeout):
            if record.get("type") == "job" and record.get("state") in (
                "done", "failed", "cancelled"
            ):
                break
        return self.status(job_id)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None  # HTTP-date form: let backoff decide
