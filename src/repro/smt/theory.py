"""Bridge between the SAT core and the Simplex LRA solver.

Each *theory atom* (a canonical upper-form :class:`~repro.smt.linarith.LinAtom`)
is associated with one SAT variable and one Simplex variable (the variable
itself for single-variable atoms, a slack variable otherwise).  Asserting
the SAT literal installs the corresponding bound; the negated literal
installs the negated bound (``not (e <= c)`` is ``e > c``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from .linarith import LinAtom
from .sat import TheoryHook
from .simplex import DRat, Simplex
from .terms import Term


class LraTheory(TheoryHook):
    """The LRA theory solver plugged into :class:`repro.smt.sat.SatSolver`."""

    def __init__(self):
        self.simplex = Simplex()
        # real Term -> simplex var
        self.var_of_term: dict[Term, int] = {}
        # canonical expr (tuple of (Term, Fraction)) -> simplex var
        self.var_of_expr: dict[tuple, int] = {}
        # SAT var -> (simplex var, pos action, neg action);
        # an action is ("U"|"L", DRat bound)
        self.actions: dict[int, tuple[int, tuple[str, DRat], tuple[str, DRat]]] = {}
        self._model_values: Optional[list[Fraction]] = None
        # Farkas certificate of the most recent conflict, consumed once by
        # the SAT core when proof logging is armed (see TheoryHook.take_farkas).
        self._farkas: Optional[tuple] = None

    # -- registration ------------------------------------------------------

    def simplex_var(self, term: Term) -> int:
        """Simplex variable for a real-sorted term variable."""
        v = self.var_of_term.get(term)
        if v is None:
            v = self.simplex.new_var()
            self.var_of_term[term] = v
        return v

    def register_atom(self, atom: LinAtom, sat_var: int) -> None:
        """Associate an upper-form atom with a SAT variable."""
        assert atom.upper, "atoms must be canonicalized to upper form"
        if len(atom.expr) == 1 and atom.expr[0][1] == 1:
            svar = self.simplex_var(atom.expr[0][0])
        else:
            key = atom.expr
            svar = self.var_of_expr.get(key)
            if svar is None:
                row = {self.simplex_var(t): c for t, c in atom.expr}
                svar = self.simplex.add_row(row)
                self.var_of_expr[key] = svar
        pos = ("U", DRat(atom.bound, -1 if atom.strict else 0))
        # negation: e > bound (strict) when atom was <=, e >= bound when <
        neg = ("L", DRat(atom.bound, 0 if atom.strict else 1))
        self.actions[sat_var] = (svar, pos, neg)

    # -- TheoryHook interface ------------------------------------------------

    def assert_lit(self, lit: int) -> Optional[list[int]]:
        svar, pos, neg = self.actions[abs(lit)]
        which, bound = pos if lit > 0 else neg
        if which == "U":
            conflict = self.simplex.assert_upper(svar, bound, lit)
        else:
            conflict = self.simplex.assert_lower(svar, bound, lit)
        if conflict is None:
            return None
        self._farkas = getattr(conflict, "farkas", None)
        return list(conflict)

    def check(self, final: bool) -> Optional[list[int]]:
        conflict = self.simplex.check()
        if conflict is not None:
            self._farkas = getattr(conflict, "farkas", None)
            return list(conflict)
        if final:
            self._model_values = self.simplex.model()
        return None

    def take_farkas(self) -> Optional[tuple]:
        farkas, self._farkas = self._farkas, None
        return farkas

    def push_level(self) -> None:
        self.simplex.push_level()

    def pop_levels(self, count: int) -> None:
        self.simplex.pop_levels(count)

    def reset(self) -> None:
        self.simplex.reset_bounds()

    # -- models ---------------------------------------------------------------

    def model_value(self, term: Term) -> Fraction:
        """Concrete value of a real variable in the last theory model."""
        if self._model_values is None:
            return Fraction(0)
        svar = self.var_of_term.get(term)
        if svar is None or svar >= len(self._model_values):
            return Fraction(0)
        return self._model_values[svar]
