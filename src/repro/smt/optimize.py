"""Objective optimization by binary search over a rational objective.

The CCmatic *worst-case counterexample* optimization asks the verifier to
maximize ``min_t (u_t - l_t)`` (paper §3.1.2) — "we maximize using binary
search".  This module provides exactly that primitive, generalized: given a
satisfiable constraint system and a real objective term, find (to a given
precision) the largest value ``m`` such that the system plus
``objective >= m`` is satisfiable, returning the maximizing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..obs import DEBUG, tracer
from .solver import CheckOptions, Model, Result, _require_options, sat, unknown, unsat
from .terms import Term


@dataclass
class OptimizeResult:
    """Outcome of a binary-search optimization.

    ``unknown`` is True when the *initial* feasibility probe was
    inconclusive (conflict or wall-clock budget exhausted), i.e. the
    caller must not interpret ``feasible=False`` as a proof of
    infeasibility.
    """

    feasible: bool
    best_value: Optional[Fraction]
    model: Optional[Model]
    probes: int
    unknown: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        # A dataclass instance is always truthy, so `if opt:` silently
        # meant "always" — never "feasible".  Mirror Result.__bool__.
        raise TypeError(
            "OptimizeResult is not a boolean; test .feasible (and .unknown) "
            "explicitly"
        )


def maximize(
    solver,
    objective: Term,
    lo: Fraction,
    hi: Fraction,
    precision: Fraction = Fraction(1, 64),
    options: Optional[CheckOptions] = None,
) -> OptimizeResult:
    """Maximize ``objective`` over the solver's current assertions.

    ``solver`` is anything with the incremental interface
    (``push``/``pop``/``add``/``check``/``model``) — a raw
    :class:`~repro.smt.solver.Solver` or a
    :class:`~repro.smt.session.SolverSession` (probes issued through a
    session hit its query cache).  Per-probe budgets go through
    ``options`` (:class:`CheckOptions`).

    ``lo`` must be a value for which feasibility is *unknown or likely*;
    ``hi`` an upper limit of the search.  The solver is used through
    push/pop, so its assertion stack is unchanged on return.  Returns the
    best model found; ``feasible=False`` when even ``objective >= lo`` has
    no model (with ``unknown=True`` when that probe was inconclusive
    rather than unsat).  Each binary-search step is emitted as an
    ``opt.probe`` event when tracing is enabled.
    """
    opts = _require_options(options, "maximize")
    lo = Fraction(lo)
    hi = Fraction(hi)
    probes = 0
    tr = tracer()

    def probe(value: Fraction) -> tuple[Result, Optional[Model]]:
        nonlocal probes
        probes += 1
        solver.push()
        solver.add(objective >= value)
        outcome = solver.check(opts)
        model = solver.model() if outcome is sat else None
        solver.pop()
        if tr.enabled:
            tr.event(
                "opt.probe",
                level=DEBUG,
                probe=probes,
                value=str(value),
                result=outcome.value,
            )
        return outcome, model

    outcome, model = probe(lo)
    if outcome is not sat:
        return OptimizeResult(False, None, None, probes, unknown=outcome is unknown)
    best_value = model.value(objective)
    best_model = model

    # best_value may already exceed lo; start the search from it.
    low = max(lo, best_value)
    high = hi
    while high - low > precision:
        mid = (low + high) / 2
        outcome, model = probe(mid)
        if outcome is sat:
            achieved = model.value(objective)
            low = max(mid, achieved)
            if achieved > best_value:
                best_value = achieved
                best_model = model
        else:
            high = mid
    return OptimizeResult(True, best_value, best_model, probes)


def minimize(
    solver,
    objective: Term,
    lo: Fraction,
    hi: Fraction,
    precision: Fraction = Fraction(1, 64),
    options: Optional[CheckOptions] = None,
) -> OptimizeResult:
    """Minimize ``objective`` (dual of :func:`maximize`)."""
    opts = _require_options(options, "minimize")
    result = maximize(solver, -objective, -hi, -lo, precision, opts)
    # NB: test fields explicitly — OptimizeResult refuses truthiness
    if result.best_value is not None:
        return OptimizeResult(
            result.feasible, -result.best_value, result.model, result.probes,
            result.unknown,
        )
    return result
