"""Reusable constraint encodings over the term language.

These are the gadgets the CCmatic encodings rely on:

* ``encode_max`` / ``encode_min`` — define a variable as the max/min of
  finitely many terms;
* ``exactly_one`` / ``at_most_one`` — one-hot selector constraints;
* ``select_product`` — the CCmatic paper's linearization of a product
  ``v * u`` where ``v`` ranges over a finite set ``A``:
  ``sum(ite(v == a, a * u, 0) for a in A)`` (§3.1.2 of the paper), expressed
  here with one-hot booleans so the result stays in QF-LRA.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .terms import And, Implies, Not, Or, RealVal, Sum, Term


def encode_max(result: Term, operands: Sequence[Term]) -> Term:
    """Constraint stating ``result == max(operands)``."""
    parts = [result >= op for op in operands]
    parts.append(Or(*[result <= op for op in operands]))
    return And(*parts)


def encode_min(result: Term, operands: Sequence[Term]) -> Term:
    """Constraint stating ``result == min(operands)``."""
    parts = [result <= op for op in operands]
    parts.append(Or(*[result >= op for op in operands]))
    return And(*parts)


def encode_abs(result: Term, operand: Term) -> Term:
    """Constraint stating ``result == |operand|``."""
    return And(
        result >= operand,
        result >= -operand,
        Or(result <= operand, result <= -operand),
    )


def at_most_one(selectors: Sequence[Term]) -> Term:
    """Pairwise at-most-one over boolean selectors."""
    parts = []
    for i in range(len(selectors)):
        for j in range(i + 1, len(selectors)):
            parts.append(Or(Not(selectors[i]), Not(selectors[j])))
    return And(*parts)


def exactly_one(selectors: Sequence[Term]) -> Term:
    """Exactly-one over boolean selectors (one-hot)."""
    return And(Or(*selectors), at_most_one(selectors))


def selected_constant(selectors: Sequence[Term], values: Sequence, unknown: Term) -> Term:
    """Constraint: ``unknown`` equals the constant selected by the one-hot.

    ``And(sel_i => unknown == values[i])`` — with :func:`exactly_one` this
    pins ``unknown`` to exactly one domain value.
    """
    return And(*[Implies(sel, unknown.eq(RealVal(v))) for sel, v in zip(selectors, values)])


def select_product(
    selectors: Sequence[Term],
    values: Sequence,
    other: Term,
    result: Term,
) -> Term:
    """CCmatic's if-then-else product linearization.

    Encodes ``result == v * other`` where ``v`` is the domain value chosen
    by the one-hot ``selectors`` over ``values``:
    ``And(sel_i => result == values[i] * other)``.  Because ``values[i]``
    is a rational constant, every branch is linear.
    """
    return And(
        *[
            Implies(sel, result.eq(RealVal(v) * other))
            for sel, v in zip(selectors, values)
        ]
    )


def bool_indicator(flag: Term, indicator: Term) -> Term:
    """Couple a boolean ``flag`` to a 0/1 real ``indicator`` (for counting
    booleans inside arithmetic, e.g. MaxSAT relaxation sums)."""
    return And(
        Implies(flag, indicator.eq(RealVal(1))),
        Implies(Not(flag), indicator.eq(RealVal(0))),
    )


def totals(indicators: Sequence[Term]) -> Term:
    """Sum of 0/1 indicator variables."""
    return Sum(indicators)
