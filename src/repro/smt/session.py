"""Long-lived incremental solver sessions (the public incremental API).

A :class:`SolverSession` owns one :class:`~repro.smt.solver.Solver` for
the lifetime of many related queries.  Instead of rebuilding the full
encoding per query — the dominant cost of the CEGIS verifier, which used
to construct a fresh solver per candidate — a session asserts the shared
*base* constraints once and push/pops only the query-specific deltas::

    session = SolverSession(base=ccac_constraints)
    for candidate in candidates:
        with session.scope(*candidate_constraints):
            if session.check() is sat:
                cex = session.model()

Everything the base encoding paid for is amortized across queries: the
CNF conversion, the theory atom registration, and — because push/pop is
implemented with guard literals — the learned clauses, which survive
every pop (see :meth:`repro.smt.sat.SatSolver.simplify` and DESIGN.md,
"Clause retention across pops").

Sessions optionally consult a **content-addressed query cache** (any
object with ``lookup(key)``/``store(key, result, model)``; see
:class:`repro.engine.cache.QueryCache`).  The key is the canonical hash
(:func:`repro.smt.terms.canonical_hash`) of the active assertion set in
its *post-compile* form (:meth:`repro.smt.solver.Solver.compiled_assertions`),
so queries that differ only in assertion order, term construction order,
folded structure, or atom spelling are answered without a solve.
``unknown`` results are never cached (they describe a budget, not the
formula).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol

from ..obs import metrics
from .solver import CheckOptions, Model, Result, Solver, _require_options, sat, unknown
from .terms import Term, canonical_hash


class QueryCacheProtocol(Protocol):
    """What a session needs from a cache (implemented by
    :class:`repro.engine.cache.QueryCache`)."""

    def lookup(self, key: str):
        """``(Result, Optional[Model])`` for a previously stored query,
        or None on miss."""
        ...

    def store(self, key: str, result: Result, model: Optional[Model]) -> None:
        """Record a conclusive (sat/unsat) verdict for ``key``."""
        ...


@dataclass
class SessionStats:
    """Bookkeeping over the life of one session."""

    checks: int = 0
    solved: int = 0  # checks that reached the underlying solver
    cache_hits: int = 0
    cache_misses: int = 0
    scopes: int = 0

    def as_dict(self) -> dict:
        return {
            "checks": self.checks,
            "solved": self.solved,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "scopes": self.scopes,
        }


class SolverSession:
    """Incremental solving over a shared base encoding.

    This is the one public incremental entry point: callers that used to
    hold a raw :class:`Solver` across push/pop cycles should hold a
    session instead.  The raw solver remains available as
    :attr:`solver` for diagnostics (stats, assertions), but mutating it
    directly bypasses the cache accounting.
    """

    def __init__(
        self,
        base: Iterable[Term] = (),
        *,
        cache: Optional[QueryCacheProtocol] = None,
        compile_pipeline: Optional[bool] = None,
        produce_proofs: bool = False,
    ):
        self.solver = Solver(
            compile_pipeline=compile_pipeline, produce_proofs=produce_proofs
        )
        self.cache = cache
        self.stats = SessionStats()
        self._cached: Optional[tuple[Result, Optional[Model]]] = None
        base = list(base)
        if base:
            self.solver.add(*base)

    # -- assertion stack (delegates to the underlying solver) ---------------

    def add(self, *formulas: Term) -> None:
        """Assert formulas into the current frame."""
        self._cached = None
        self.solver.add(*formulas)

    def assertions(self) -> list[Term]:
        """All currently active assertions (base + open scopes)."""
        return self.solver.assertions()

    def push(self) -> None:
        """Open a new assertion frame."""
        self._cached = None
        self.solver.push()

    def pop(self) -> None:
        """Discard the most recent frame (learned clauses are retained)."""
        self._cached = None
        self.solver.pop()

    @contextmanager
    def scope(self, *formulas: Term):
        """One query's worth of extra assertions, popped on exit::

            with session.scope(extra1, extra2):
                session.check()
        """
        self.stats.scopes += 1
        self.push()
        try:
            if formulas:
                self.add(*formulas)
            yield self
        finally:
            self.pop()

    # -- solving -------------------------------------------------------------

    def check(self, options: Optional[CheckOptions] = None) -> Result:
        """Decide the active assertion set, consulting the cache first.

        A cache hit returns the stored verdict (and, for sat, the stored
        model) without touching the solver; conclusive misses are stored
        back.  ``unknown`` is never cached.
        """
        opts = _require_options(options, "SolverSession.check")
        self.stats.checks += 1
        key = None
        if self.cache is not None:
            # Key on the compiled form: semantically identical queries
            # that differ pre-simplification share an entry.
            key = canonical_hash(self.solver.compiled_assertions())
            # Proof mode never takes a cached verdict: a stored UNSAT
            # carries no certificate, and certification is the point.
            hit = None if self.solver.proof_mode else self.cache.lookup(key)
            if hit is not None:
                self.stats.cache_hits += 1
                metrics().counter("engine.cache.hits").inc()
                self._cached = hit
                return hit[0]
            self.stats.cache_misses += 1
            metrics().counter("engine.cache.misses").inc()
        self._cached = None
        self.stats.solved += 1
        result = self.solver.check(opts)
        if key is not None and result is not unknown:
            self.cache.store(
                key, result, self.solver.model() if result is sat else None
            )
        return result

    def certificate(self):
        """Checkable proof of the last UNSAT verdict (proof mode only);
        see :meth:`repro.smt.solver.Solver.certificate`."""
        return self.solver.certificate()

    def model(self) -> Model:
        """The model of the last sat :meth:`check` (cached or solved)."""
        if self._cached is not None:
            result, model = self._cached
            if model is None:
                from .errors import UnknownResultError

                raise UnknownResultError(
                    f"no model available (cached verdict was {result.value})"
                )
            return model
        return self.solver.model()
