"""The user-facing SMT solver: a z3-flavoured API over CDCL(T).

Example::

    from repro.smt import Real, Solver, sat

    x, y = Real("x"), Real("y")
    s = Solver()
    s.add(x + y <= 4, x >= 1, y >= 2)
    assert s.check() == sat
    m = s.model()
    m.value(x)  # Fraction

``push``/``pop`` are implemented with guard literals: every assertion made
inside a frame is guarded by that frame's activation literal, checks pass
the active guards as assumptions, and ``pop`` permanently disables the
guard.  This keeps the CDCL core fully incremental (learned clauses are
never invalidated).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Iterable, Optional

from .cnf import TseitinEncoder
from .errors import UnknownResultError
from .preprocess import preprocess
from .sat import SatSolver
from .terms import Sort, Term, evaluate
from .theory import LraTheory


class Result(Enum):
    """Outcome of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("compare against repro.smt.sat/unsat explicitly")


sat = Result.SAT
unsat = Result.UNSAT
unknown = Result.UNKNOWN


class Model:
    """A satisfying assignment; evaluates arbitrary terms.

    Variables that the solver never saw evaluate to 0 / False, matching
    the convention of other SMT solvers for don't-care variables.
    """

    def __init__(self, bool_values: dict[Term, bool], real_values: dict[Term, Fraction]):
        self._bools = bool_values
        self._reals = real_values

    def value(self, term: Term):
        """Evaluate ``term`` (bool -> bool, real -> Fraction)."""
        if term.is_var():
            if term.sort is Sort.BOOL:
                return self._bools.get(term, False)
            return self._reals.get(term, Fraction(0))

        class _Env:
            def __init__(self, model: "Model"):
                self.model = model

            def __getitem__(self, var: Term):
                return self.model.value(var)

        return evaluate(term, _Env(self))

    def __repr__(self) -> str:
        parts = [f"{t.name}={v}" for t, v in list(self._reals.items())[:8]]
        return f"Model({', '.join(parts)}{'...' if len(self._reals) > 8 else ''})"


@dataclass
class SolverStats:
    """Cumulative statistics over the life of a solver."""

    checks: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    pivots: int = 0
    solve_time: float = 0.0


class Solver:
    """Incremental DPLL(T) solver for QF-LRA + booleans."""

    def __init__(self):
        self.theory = LraTheory()
        self.sat_core = SatSolver(self.theory)
        self.encoder = TseitinEncoder(self.sat_core, self.theory)
        self._frames: list[int] = []  # guard SAT vars, one per push
        self._assertions: list[list[Term]] = [[]]
        self._last_result: Optional[Result] = None
        self._model: Optional[Model] = None
        self.stats = SolverStats()

    # -- assertions -----------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean terms."""
        guard = self._frames[-1] if self._frames else None
        for f in formulas:
            self._assertions[-1].append(f)
            self.encoder.assert_formula(preprocess(f), guard)
        self._last_result = None

    def assertions(self) -> list[Term]:
        """All currently active assertions (across frames)."""
        return [f for frame in self._assertions for f in frame]

    def push(self) -> None:
        """Open a new assertion frame."""
        self._frames.append(self.sat_core.new_var())
        self._assertions.append([])

    def pop(self) -> None:
        """Discard the most recent frame and its assertions."""
        if not self._frames:
            raise IndexError("pop without matching push")
        guard = self._frames.pop()
        self._assertions.pop()
        self.sat_core.add_clause([-guard])
        self._last_result = None

    # -- solving --------------------------------------------------------------

    def check(self, max_conflicts: Optional[int] = None) -> Result:
        """Decide satisfiability of the current assertion stack."""
        start = time.perf_counter()
        outcome = self.sat_core.solve(
            assumptions=list(self._frames), max_conflicts=max_conflicts
        )
        self.stats.checks += 1
        self.stats.solve_time += time.perf_counter() - start
        self.stats.conflicts = self.sat_core.conflicts
        self.stats.decisions = self.sat_core.decisions
        self.stats.propagations = self.sat_core.propagations
        self.stats.pivots = self.theory.simplex.pivots
        if outcome is None:
            self._last_result = unknown
            self._model = None
        elif outcome:
            self._last_result = sat
            self._model = self._build_model()
        else:
            self._last_result = unsat
            self._model = None
        return self._last_result

    def _build_model(self) -> Model:
        bools = {
            term: self.sat_core.model_value(var)
            for term, var in self.encoder._bool_vars.items()
        }
        reals = {
            term: self.theory.model_value(term)
            for term in self.theory.var_of_term
        }
        return Model(bools, reals)

    def model(self) -> Model:
        """The model of the last successful :meth:`check`."""
        if self._model is None:
            raise UnknownResultError("no model available (last check not sat)")
        return self._model


def check_formulas(formulas: Iterable[Term], max_conflicts: Optional[int] = None) -> Result:
    """One-shot satisfiability check of a conjunction of formulas."""
    s = Solver()
    s.add(*formulas)
    return s.check(max_conflicts=max_conflicts)
