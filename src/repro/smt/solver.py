"""The user-facing SMT solver: a z3-flavoured API over CDCL(T).

Example::

    from repro.smt import Real, Solver, sat

    x, y = Real("x"), Real("y")
    s = Solver()
    s.add(x + y <= 4, x >= 1, y >= 2)
    assert s.check() == sat
    m = s.model()
    m.value(x)  # Fraction

``push``/``pop`` are implemented with guard literals: every assertion made
inside a frame is guarded by that frame's activation literal, checks pass
the active guards as assumptions, and ``pop`` permanently disables the
guard.  This keeps the CDCL core fully incremental (learned clauses are
never invalidated).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from fractions import Fraction
from typing import Iterable, Optional

from ..obs import DEBUG, metrics, tracer
from ..trust.proof import NeutralAtom, ProofError, ProofLog, UnsatCertificate
from .cnf import TseitinEncoder
from .compile import CompileOptions, compile_query, pipeline_enabled
from .errors import UnknownResultError
from .linarith import LinExpr
from .preprocess import preprocess
from .sat import SatSolver
from .terms import Kind, Sort, Term, evaluate, interned_count, substitute
from .theory import LraTheory


class Result(Enum):
    """Outcome of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("compare against repro.smt.sat/unsat explicitly")


sat = Result.SAT
unsat = Result.UNSAT
unknown = Result.UNKNOWN


@dataclass(frozen=True)
class CheckOptions:
    """Options of one satisfiability check.

    This frozen dataclass is the one way to configure a check — it
    replaces the kwarg pile that ``Solver.check`` had started to grow.
    Pass it to :meth:`Solver.check` / :meth:`SolverSession.check`::

        s.check(CheckOptions(max_conflicts=10_000))

    ``deadline`` is a ``time.perf_counter()`` timestamp; the search
    aborts with :data:`unknown` once it has passed (checked at each
    conflict, like ``max_conflicts``).

    ``produce_proofs`` arms DRAT/Farkas proof logging so an UNSAT
    verdict can be certified (:meth:`Solver.certificate`).  It can only
    be turned on while the solver is still pristine — proofs must cover
    every clause from the start — otherwise the check raises
    :class:`~repro.trust.proof.ProofError`.
    """

    #: give up (-> unknown) after this many conflicts; None = unbounded
    max_conflicts: Optional[int] = None
    #: give up (-> unknown) past this ``time.perf_counter()`` timestamp
    deadline: Optional[float] = None
    #: log a checkable proof (DRAT clauses + Farkas lemmas) of UNSAT results
    produce_proofs: bool = False

    def with_deadline(self, deadline: Optional[float]) -> "CheckOptions":
        """A copy with ``deadline`` replaced (options are immutable)."""
        return replace(self, deadline=deadline)


def _require_options(options, where: str) -> CheckOptions:
    """Check configuration is a :class:`CheckOptions` value, full stop.

    The 1.x compatibility shims (positional-int ``max_conflicts`` and the
    ``max_conflicts=``/``deadline=`` keywords, deprecated throughout the
    1.x series) were removed in 2.0; anything that is not a
    ``CheckOptions`` gets a :class:`TypeError` pointing at the
    replacement.
    """
    if options is None:
        return CheckOptions()
    if not isinstance(options, CheckOptions):
        raise TypeError(
            f"{where} takes a CheckOptions value "
            f"(got {type(options).__name__}); the 1.x positional/keyword "
            f"forms were removed in 2.0 — pass "
            f"CheckOptions(max_conflicts=..., deadline=...) instead"
        )
    return options


class Model:
    """A satisfying assignment; evaluates arbitrary terms.

    Variables that the solver never saw evaluate to 0 / False, matching
    the convention of other SMT solvers for don't-care variables.
    """

    def __init__(self, bool_values: dict[Term, bool], real_values: dict[Term, Fraction]):
        self._bools = bool_values
        self._reals = real_values

    def value(self, term: Term):
        """Evaluate ``term`` (bool -> bool, real -> Fraction)."""
        if term.is_var():
            if term.sort is Sort.BOOL:
                return self._bools.get(term, False)
            return self._reals.get(term, Fraction(0))

        class _Env:
            def __init__(self, model: "Model"):
                self.model = model

            def __getitem__(self, var: Term):
                return self.model.value(var)

        return evaluate(term, _Env(self))

    def assignment(self) -> tuple[dict[Term, bool], dict[Term, Fraction]]:
        """The raw variable assignment as ``(bools, reals)`` dict copies.

        This is the interface for *independent* model validation
        (:mod:`repro.runtime.validate`): external checkers re-evaluate the
        asserted formulas against these values without going through
        :meth:`value`, so a bug in the solver's own evaluation path cannot
        mask itself.
        """
        return dict(self._bools), dict(self._reals)

    def __repr__(self) -> str:
        parts = [f"{t.name}={v}" for t, v in list(self._reals.items())[:8]]
        return f"Model({', '.join(parts)}{'...' if len(self._reals) > 8 else ''})"


@dataclass
class SolverStats:
    """Statistics over the life of a solver.

    The cumulative fields (``conflicts``, ``decisions``, ...) are sums of
    per-check *deltas*, so they stay meaningful when stats from several
    short-lived ``Solver`` instances are aggregated (the CEGIS verifier
    builds a fresh solver per call).  ``last_check_*`` holds the delta of
    the most recent :meth:`Solver.check` alone.
    """

    checks: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    pivots: int = 0
    restarts: int = 0
    solve_time: float = 0.0
    last_check_conflicts: int = 0
    last_check_decisions: int = 0
    last_check_propagations: int = 0
    last_check_pivots: int = 0
    last_check_restarts: int = 0
    last_check_time: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict export (for traces, snapshots, BENCH_*.json)."""
        return asdict(self)


class Solver:
    """Incremental DPLL(T) solver for QF-LRA + booleans.

    Assertions normally go through the staged compile pipeline
    (:mod:`repro.smt.compile`) before hitting the CNF encoder; pass
    ``compile_pipeline=False`` (or set the ``REPRO_NO_COMPILE_PIPELINE``
    environment flag / CLI escape hatch) to encode raw preprocessed
    terms instead.  :meth:`assertions` always returns the raw formulas
    as asserted; :meth:`compiled_assertions` returns what was encoded.
    """

    def __init__(
        self,
        *,
        compile_pipeline: Optional[bool] = None,
        compile_options: Optional[CompileOptions] = None,
        produce_proofs: bool = False,
    ):
        self.theory = LraTheory()
        self.sat_core = SatSolver(self.theory)
        self.encoder = TseitinEncoder(self.sat_core, self.theory)
        self._frames: list[int] = []  # guard SAT vars, one per push
        self._assertions: list[list[Term]] = [[]]
        self._last_result: Optional[Result] = None
        self._model: Optional[Model] = None
        self.stats = SolverStats()
        self._pipeline = (
            pipeline_enabled() if compile_pipeline is None else compile_pipeline
        )
        self._compile_options = compile_options
        #: compiled (encoded) formulas, one list per frame
        self._compiled: list[list[Term]] = [[]]
        #: eliminated var -> resolved defining term (never references
        #: another eliminated var), for model reconstruction
        self._elim: dict[Term, Term] = {}
        self._elim_stack: list[dict[Term, Term]] = []
        #: variables already present in the encoding; later delta
        #: compiles must not eliminate them (soundness: ``add(x <= 2)``
        #: then ``add(x == 3)`` has to constrain the *same* x).  Never
        #: shrinks on pop — the encoder's literal cache outlives frames.
        self._frozen: set[Term] = set()
        #: proof mode: the formulas actually handed to the CNF encoder
        #: (compiled or preprocessed), one list per frame — certificates
        #: name these, not the raw assertions
        self._encoded: list[list[Term]] = [[]]
        self._disabled_guards: list[int] = []
        self._proof: Optional[ProofLog] = None
        if produce_proofs:
            self._arm_proofs()

    def _arm_proofs(self) -> None:
        self._proof = ProofLog()
        self.sat_core.proof = self._proof
        self.encoder.record_defs = True

    # -- assertions -----------------------------------------------------------

    def add(self, *formulas: Term) -> None:
        """Assert one or more boolean terms."""
        guard = self._frames[-1] if self._frames else None
        self._last_result = None
        if not self._pipeline:
            for f in formulas:
                self._assertions[-1].append(f)
                p = preprocess(f)
                self._encoded[-1].append(p)
                self.encoder.assert_formula(p, guard)
            return
        # Delta compile: earlier eliminations are substituted into the
        # incoming formulas first, so a query never mentions a variable
        # that no longer exists in the encoding.
        inputs = tuple(
            substitute(f, self._elim) if self._elim else f for f in formulas
        )
        compiled = compile_query(
            inputs, options=self._compile_options, frozen=self._frozen
        )
        self._assertions[-1].extend(formulas)
        self._compiled[-1].extend(compiled.formulas)
        self._encoded[-1].extend(compiled.formulas)
        for f in compiled.formulas:
            self.encoder.assert_formula(f, guard)
            for node in f.iter_dag():
                if node.kind is Kind.VAR:
                    self._frozen.add(node)
        if compiled.eliminated:
            new = dict(compiled.eliminated)
            for v in list(self._elim):
                self._elim[v] = substitute(self._elim[v], new)
            self._elim.update(new)

    def assertions(self) -> list[Term]:
        """All currently active assertions (across frames), as asserted."""
        return [f for frame in self._assertions for f in frame]

    def compiled_assertions(self) -> list[Term]:
        """The active *compiled* formulas — the post-pipeline form that
        was actually encoded (equals :meth:`assertions` when the
        pipeline is off).  This is what cache keys hash."""
        if not self._pipeline:
            return self.assertions()
        return [f for frame in self._compiled for f in frame]

    def push(self) -> None:
        """Open a new assertion frame."""
        self._frames.append(self.sat_core.new_var())
        self._assertions.append([])
        self._compiled.append([])
        self._encoded.append([])
        self._elim_stack.append(dict(self._elim))

    def pop(self) -> None:
        """Discard the most recent frame and its assertions.

        The frame's guard is permanently disabled by a root-level unit,
        which keeps every learned clause valid; the clauses that unit
        satisfies (the popped frame's encoding, and any learned clause
        that depends on it) are then garbage-collected from the clause
        database while the still-valid learned clauses are retained (see
        :meth:`repro.smt.sat.SatSolver.simplify`).
        """
        if not self._frames:
            raise IndexError("pop without matching push")
        guard = self._frames.pop()
        self._assertions.pop()
        self._compiled.pop()
        self._encoded.pop()
        self._disabled_guards.append(guard)
        if self._elim_stack:
            self._elim = self._elim_stack.pop()
        self.sat_core.add_clause([-guard])
        self.sat_core.simplify()
        self._last_result = None

    # -- solving --------------------------------------------------------------

    #: emit an ``smt.progress`` event every this many conflicts while tracing
    PROGRESS_EVERY = 512

    def check(self, options: Optional[CheckOptions] = None) -> Result:
        """Decide satisfiability of the current assertion stack.

        Configuration goes through a single :class:`CheckOptions` value::

            s.check()                                     # defaults
            s.check(CheckOptions(max_conflicts=10_000))   # budgeted

        The 1.x ``max_conflicts``/``deadline`` keyword and positional-int
        forms were removed in 2.0.
        """
        opts = _require_options(options, "Solver.check")
        max_conflicts = opts.max_conflicts
        deadline = opts.deadline
        core = self.sat_core
        if opts.produce_proofs and self._proof is None:
            if core.nvars != 0 or core.clauses:
                raise ProofError(
                    "produce_proofs requested on a solver that has already "
                    "encoded clauses; proofs must cover every clause from "
                    "the start (construct with Solver(produce_proofs=True))"
                )
            self._arm_proofs()
        base_conflicts = core.conflicts
        base_decisions = core.decisions
        base_propagations = core.propagations
        base_restarts = core.restarts
        base_pivots = self.theory.simplex.pivots

        tr = tracer()
        span = None
        on_progress = None
        if tr.enabled:
            span = tr.span(
                "smt.check",
                level=DEBUG,
                vars=core.nvars,
                clauses=len(core.clauses),
            )
            span.__enter__()
            last_reported = [base_conflicts]

            def on_progress(conflicts: int) -> None:
                if conflicts - last_reported[0] >= self.PROGRESS_EVERY:
                    last_reported[0] = conflicts
                    tr.event(
                        "smt.progress",
                        level=DEBUG,
                        conflicts=conflicts - base_conflicts,
                        restarts=core.restarts - base_restarts,
                        learned=len(core.learned),
                    )

        start = time.perf_counter()
        try:
            outcome = core.solve(
                assumptions=list(self._frames),
                max_conflicts=max_conflicts,
                on_progress=on_progress,
                deadline=deadline,
            )
        except BaseException as exc:
            if span is not None:
                span.__exit__(type(exc), exc, exc.__traceback__)
                span = None
            raise
        finally:
            elapsed = time.perf_counter() - start
            st = self.stats
            st.checks += 1
            st.solve_time += elapsed
            st.last_check_conflicts = core.conflicts - base_conflicts
            st.last_check_decisions = core.decisions - base_decisions
            st.last_check_propagations = core.propagations - base_propagations
            st.last_check_restarts = core.restarts - base_restarts
            st.last_check_pivots = self.theory.simplex.pivots - base_pivots
            st.last_check_time = elapsed
            st.conflicts += st.last_check_conflicts
            st.decisions += st.last_check_decisions
            st.propagations += st.last_check_propagations
            st.restarts += st.last_check_restarts
            st.pivots += st.last_check_pivots
            reg = metrics()
            reg.counter("smt.checks").inc()
            reg.counter("smt.conflicts").inc(st.last_check_conflicts)
            reg.counter("smt.decisions").inc(st.last_check_decisions)
            reg.counter("smt.propagations").inc(st.last_check_propagations)
            reg.counter("smt.restarts").inc(st.last_check_restarts)
            reg.counter("smt.pivots").inc(st.last_check_pivots)
            reg.gauge("smt.clauses").set(len(core.clauses))
            reg.gauge("smt.terms.interned").set(interned_count())
            reg.histogram("smt.check_time").observe(elapsed)

        if outcome is None:
            self._last_result = unknown
            self._model = None
        elif outcome:
            self._last_result = sat
            self._model = self._build_model()
        else:
            self._last_result = unsat
            self._model = None
        metrics().counter(f"smt.result.{self._last_result.value}").inc()
        if span is not None:
            span.set(
                result=self._last_result.value,
                conflicts=self.stats.last_check_conflicts,
                decisions=self.stats.last_check_decisions,
                propagations=self.stats.last_check_propagations,
                pivots=self.stats.last_check_pivots,
                restarts=self.stats.last_check_restarts,
            )
            span.__exit__(None, None, None)
        return self._last_result

    def _build_model(self) -> Model:
        bools = {
            term: self.sat_core.model_value(var)
            for term, var in self.encoder._bool_vars.items()
        }
        reals = {
            term: self.theory.model_value(term)
            for term in self.theory.var_of_term
        }
        # Reconstruct variables the compile pipeline eliminated, so the
        # model satisfies the *raw* assertions too (runtime.validate
        # replays those).  Definitions are resolved — they reference only
        # surviving variables — so one linear evaluation each suffices.
        for var, defn in self._elim.items():
            expr = LinExpr.from_term(defn)
            value = expr.const
            for v, c in expr.coeffs.items():
                value += c * reals.get(v, Fraction(0))
            reals[var] = value
        return Model(bools, reals)

    def model(self) -> Model:
        """The model of the last successful :meth:`check`."""
        if self._model is None:
            raise UnknownResultError("no model available (last check not sat)")
        return self._model

    # -- certification ---------------------------------------------------------

    @property
    def proof_mode(self) -> bool:
        """Whether this solver is logging a checkable proof."""
        return self._proof is not None

    def certificate(self) -> UnsatCertificate:
        """The checkable proof of the last :data:`unsat` verdict.

        Snapshot this *before* mutating the solver further (``pop`` in
        particular disables the frame the assumptions refer to).  Feed
        the result to :func:`repro.trust.check_certificate` /
        :func:`repro.trust.certify_certificate`.
        """
        if self._proof is None:
            raise ProofError(
                "solver is not in proof mode; pass produce_proofs=True "
                "at construction or in CheckOptions before any assertion"
            )
        if self._last_result is not unsat:
            raise ProofError(
                f"no UNSAT verdict to certify (last check: "
                f"{self._last_result.value if self._last_result is not None else 'none'})"
            )
        enc = self.encoder
        atoms = {
            var: NeutralAtom(
                coeffs=tuple((t.name, c) for t, c in atom.expr),
                bound=atom.bound,
                strict=atom.strict,
            )
            for atom, var in enc._atom_vars.items()
        }
        bool_vars = {var: term.name for term, var in enc._bool_vars.items()}
        frames = [(None, tuple(self._encoded[0]))]
        frames.extend(
            (guard, tuple(encoded))
            for guard, encoded in zip(self._frames, self._encoded[1:])
        )
        return UnsatCertificate(
            steps=tuple(self._proof.steps),
            nvars=self.sat_core.nvars,
            atoms=atoms,
            bool_vars=bool_vars,
            defs=dict(enc._defs),
            true_var=enc._true_lit,
            frames=tuple(frames),
            disabled_guards=frozenset(self._disabled_guards),
            assumptions=tuple(self._frames),
            info={"checks": self.stats.checks},
        )


def check_formulas(
    formulas: Iterable[Term], options: Optional[CheckOptions] = None
) -> Result:
    """One-shot satisfiability check of a conjunction of formulas."""
    s = Solver()
    s.add(*formulas)
    return s.check(options)
