"""Tseitin CNF conversion from preprocessed terms to SAT clauses.

Definitional clauses (``aux <=> subformula``) are valid independently of any
assertion frame, so they are emitted unguarded; only the root literal of an
asserted formula is guarded by the solver's frame machinery (see
:mod:`repro.smt.solver`).

The encoder owns the mapping from boolean variables and canonical
arithmetic atoms to SAT variables and registers new atoms with the theory.
"""

from __future__ import annotations

from typing import Callable

from .errors import SortError
from .linarith import LinAtom, normalize_atom
from .sat import SatSolver
from .terms import Kind, Sort, Term
from .theory import LraTheory


class TseitinEncoder:
    """Stateful encoder shared across all assertions of one solver."""

    def __init__(self, sat: SatSolver, theory: LraTheory):
        self.sat = sat
        self.theory = theory
        self._lit_cache: dict[int, int] = {}
        self._atom_vars: dict[LinAtom, int] = {}
        self._bool_vars: dict[Term, int] = {}
        self._true_lit: int | None = None
        # Proof mode: when set, remember each aux variable's definition
        # (connective kind + child literals) so a certificate can justify
        # the Tseitin clauses without trusting this encoder.
        self.record_defs = False
        self._defs: dict[int, tuple[str, tuple[int, ...]]] = {}

    def _def(self, var: int, op: str, child_lits: tuple[int, ...]) -> None:
        if self.record_defs:
            self._defs[var] = (op, child_lits)

    # -- plumbing ------------------------------------------------------------

    def true_lit(self) -> int:
        """A literal asserted true at the root (used for constants)."""
        if self._true_lit is None:
            v = self.sat.new_var()
            self.sat.add_clause([v])
            self._true_lit = v
        return self._true_lit

    def bool_var_lit(self, term: Term) -> int:
        var = self._bool_vars.get(term)
        if var is None:
            var = self.sat.new_var()
            self._bool_vars[term] = var
        return var

    def atom_lit(self, term: Term) -> int:
        """Literal for an arithmetic atom term (LE/LT), canonical upper form."""
        atom = normalize_atom(term)
        if isinstance(atom, bool):
            return self.true_lit() if atom else -self.true_lit()
        negated = False
        if not atom.upper:
            atom = atom.negate()
            negated = True
        var = self._atom_vars.get(atom)
        if var is None:
            var = self.sat.new_var(theory_atom=True)
            self._atom_vars[atom] = var
            self.theory.register_atom(atom, var)
        return -var if negated else var

    # -- encoding ------------------------------------------------------------

    def literal(self, term: Term) -> int:
        """Tseitin literal for an arbitrary boolean term."""
        cached = self._lit_cache.get(id(term))
        if cached is not None:
            return cached
        lit = self._encode(term)
        self._lit_cache[id(term)] = lit
        return lit

    def _encode(self, term: Term) -> int:
        if term.sort is not Sort.BOOL:
            raise SortError(f"expected boolean term: {term!r}")
        k = term.kind
        if k is Kind.CONST:
            return self.true_lit() if term.value else -self.true_lit()
        if k is Kind.VAR:
            return self.bool_var_lit(term)
        if k in (Kind.LE, Kind.LT):
            return self.atom_lit(term)
        if k is Kind.EQ:
            raise SortError("equality atoms must be eliminated by preprocess()")
        if k is Kind.NOT:
            return -self.literal(term.args[0])
        add = self.sat.add_clause
        if k is Kind.AND:
            lits = [self.literal(a) for a in term.args]
            f = self.sat.new_var()
            self._def(f, "AND", tuple(lits))
            for l in lits:
                add([-f, l])
            add([f] + [-l for l in lits])
            return f
        if k is Kind.OR:
            lits = [self.literal(a) for a in term.args]
            f = self.sat.new_var()
            self._def(f, "OR", tuple(lits))
            for l in lits:
                add([-l, f])
            add([-f] + lits)
            return f
        if k is Kind.IMPLIES:
            a = self.literal(term.args[0])
            b = self.literal(term.args[1])
            f = self.sat.new_var()
            self._def(f, "IMPLIES", (a, b))
            add([-f, -a, b])
            add([f, a])
            add([f, -b])
            return f
        if k is Kind.IFF:
            a = self.literal(term.args[0])
            b = self.literal(term.args[1])
            f = self.sat.new_var()
            self._def(f, "IFF", (a, b))
            add([-f, -a, b])
            add([-f, a, -b])
            add([f, a, b])
            add([f, -a, -b])
            return f
        if k is Kind.ITE:  # boolean ITE
            c = self.literal(term.args[0])
            t = self.literal(term.args[1])
            e = self.literal(term.args[2])
            f = self.sat.new_var()
            self._def(f, "ITE", (c, t, e))
            add([-f, -c, t])
            add([-f, c, e])
            add([f, -c, -t])
            add([f, c, -e])
            return f
        raise SortError(f"cannot encode term of kind {k}: {term!r}")

    def assert_formula(self, term: Term, guard: int | None = None) -> None:
        """Assert ``term`` at the root, optionally guarded by ``guard``
        (the clause becomes ``term OR NOT guard``)."""
        extra = [-guard] if guard is not None else []
        self._assert_top(term, extra)

    def _assert_top(self, term: Term, extra: list[int]) -> None:
        # Flatten top-level conjunctions / disjunctions into plain clauses.
        if term.kind is Kind.AND:
            for a in term.args:
                self._assert_top(a, extra)
            return
        if term.kind is Kind.OR:
            self.sat.add_clause([self.literal(a) for a in term.args] + extra)
            return
        if term.kind is Kind.IMPLIES:
            a, b = term.args
            self.sat.add_clause([-self.literal(a), self.literal(b)] + extra)
            return
        self.sat.add_clause([self.literal(term)] + extra)
