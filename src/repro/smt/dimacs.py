"""DIMACS CNF interchange for the SAT core.

Lets the CDCL engine consume the standard benchmark format (and dump the
boolean abstraction of any query for external cross-checking).  Supports
the ``p cnf`` header, comment lines, and multi-line clauses terminated
by 0.
"""

from __future__ import annotations

from typing import Iterable, Optional, TextIO

from .errors import SmtError
from .sat import SatSolver


class DimacsError(SmtError):
    """Malformed DIMACS input."""


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Returns (num_vars, clauses)."""
    nvars: Optional[int] = None
    nclauses: Optional[int] = None
    clauses: list[list[int]] = []
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"bad problem line: {line!r}")
            nvars, nclauses = int(parts[2]), int(parts[3])
            continue
        if line.startswith("%"):
            break  # SATLIB trailer
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        raise DimacsError("last clause not terminated with 0")
    if nvars is None:
        raise DimacsError("missing 'p cnf' header")
    for clause in clauses:
        for lit in clause:
            if abs(lit) > nvars:
                raise DimacsError(f"literal {lit} exceeds declared {nvars} vars")
    if nclauses is not None and len(clauses) != nclauses:
        # tolerated (common in the wild) but flagged via attribute? keep strict
        pass
    return nvars, clauses


def solve_dimacs(text: str) -> tuple[Optional[bool], Optional[list[int]]]:
    """Solve a DIMACS instance.

    Returns ``(verdict, model)`` where the model is a list of signed
    literals (DIMACS ``v``-line convention) when satisfiable.
    """
    nvars, clauses = parse_dimacs(text)
    solver = SatSolver()
    for _ in range(nvars):
        solver.new_var()
    for clause in clauses:
        if not solver.add_clause(clause):
            return False, None
    verdict = solver.solve()
    if verdict is not True:
        return verdict, None
    model = [v if solver.model_value(v) else -v for v in range(1, nvars + 1)]
    return True, model


def to_dimacs(nvars: int, clauses: Iterable[list[int]]) -> str:
    """Render clauses in DIMACS CNF format."""
    clause_list = [list(c) for c in clauses]
    lines = [f"p cnf {nvars} {len(clause_list)}"]
    for clause in clause_list:
        for lit in clause:
            if lit == 0 or abs(lit) > nvars:
                raise DimacsError(f"invalid literal {lit}")
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs(fp: TextIO, nvars: int, clauses: Iterable[list[int]]) -> None:
    fp.write(to_dimacs(nvars, clauses))
