"""Hash-consed term language for the QF-LRA + Bool solver.

Terms form an immutable DAG.  Structurally identical terms are interned, so
identity (``is`` / ``id``) doubles as structural equality, which keeps the
CNF conversion and linear-arithmetic normalization cheap.

The language is deliberately small — exactly what the CCmatic encodings
need:

* Boolean connectives: ``Not``, ``And``, ``Or``, ``Implies``, ``Iff``,
  boolean ``Ite``.
* Real arithmetic: variables, rational constants, n-ary ``+``, negation,
  multiplication by a constant, real-sorted ``Ite``.
* Atoms: ``<=``, ``<``, ``==`` over reals (``>=``/``>`` are normalized to
  ``<=``/``<`` at construction; ``!=`` becomes ``Not(==)``).

Non-linear products raise :class:`~repro.smt.errors.NonLinearError` at
normalization time (see :mod:`repro.smt.linarith`).
"""

from __future__ import annotations

import itertools
from enum import Enum
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Union

from .errors import SortError

Rational = Union[int, Fraction]


class Sort(Enum):
    """Sort of a term: boolean or real-valued."""

    BOOL = "Bool"
    REAL = "Real"


class Kind(Enum):
    """Syntactic constructor of a term node."""

    CONST = "const"
    VAR = "var"
    NOT = "not"
    AND = "and"
    OR = "or"
    IMPLIES = "=>"
    IFF = "<=>"
    ITE = "ite"
    ADD = "+"
    NEG = "neg"
    SCALE = "scale"  # constant * term
    LE = "<="
    LT = "<"
    EQ = "=="


_BOOL_KINDS = frozenset(
    {Kind.NOT, Kind.AND, Kind.OR, Kind.IMPLIES, Kind.IFF, Kind.LE, Kind.LT, Kind.EQ}
)

_fresh_counter = itertools.count()


class Term:
    """A node in the interned term DAG.

    Do not construct directly; use the builder functions (:func:`Real`,
    :func:`Bool`, :func:`And`, ...) or Python operators on existing terms.
    """

    __slots__ = ("kind", "sort", "args", "name", "value", "_hash")

    _table: dict = {}
    #: intern-table accounting (exported via :func:`intern_stats`)
    _hits: int = 0
    _misses: int = 0

    def __new__(
        cls,
        kind: Kind,
        sort: Sort,
        args: tuple = (),
        name: str | None = None,
        value: Fraction | bool | None = None,
    ):
        key = (kind, sort, tuple(id(a) for a in args), name, value)
        cached = cls._table.get(key)
        if cached is not None:
            cls._hits += 1
            return cached
        cls._misses += 1
        self = object.__new__(cls)
        self.kind = kind
        self.sort = sort
        self.args = args
        self.name = name
        self.value = value
        self._hash = hash(key)
        cls._table[key] = self
        return self

    # -- introspection ---------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def is_var(self) -> bool:
        """True for free variables of either sort."""
        return self.kind is Kind.VAR

    def is_const(self) -> bool:
        """True for boolean/rational literal constants."""
        return self.kind is Kind.CONST

    def is_atom(self) -> bool:
        """True for arithmetic atoms (``<=``, ``<``, ``==``)."""
        return self.kind in (Kind.LE, Kind.LT, Kind.EQ)

    def iter_dag(self) -> Iterator["Term"]:
        """Yield every distinct subterm once, children before parents."""
        seen: set[int] = set()
        stack: list[tuple[Term, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in seen:
                continue
            if expanded:
                seen.add(id(node))
                yield node
            else:
                stack.append((node, True))
                for child in node.args:
                    if id(child) not in seen:
                        stack.append((child, False))

    # -- boolean operators ------------------------------------------------

    def __invert__(self) -> "Term":
        return Not(self)

    def __and__(self, other: "Term") -> "Term":
        return And(self, other)

    def __or__(self, other: "Term") -> "Term":
        return Or(self, other)

    # -- arithmetic operators ----------------------------------------------

    def __add__(self, other) -> "Term":
        return Add(self, _coerce_real(other))

    def __radd__(self, other) -> "Term":
        return Add(_coerce_real(other), self)

    def __sub__(self, other) -> "Term":
        return Add(self, Neg(_coerce_real(other)))

    def __rsub__(self, other) -> "Term":
        return Add(_coerce_real(other), Neg(self))

    def __neg__(self) -> "Term":
        return Neg(self)

    def __mul__(self, other) -> "Term":
        return Mul(self, other)

    def __rmul__(self, other) -> "Term":
        return Mul(other, self)

    def __truediv__(self, other) -> "Term":
        if isinstance(other, Term):
            if not other.is_const():
                raise SortError("division only by rational constants")
            other = other.value
        return Mul(Fraction(1, 1) / Fraction(other), self)

    # -- comparisons produce atoms ------------------------------------------

    def __le__(self, other) -> "Term":
        return _atom(Kind.LE, self, _coerce_real(other))

    def __lt__(self, other) -> "Term":
        return _atom(Kind.LT, self, _coerce_real(other))

    def __ge__(self, other) -> "Term":
        return _atom(Kind.LE, _coerce_real(other), self)

    def __gt__(self, other) -> "Term":
        return _atom(Kind.LT, _coerce_real(other), self)

    def eq(self, other) -> "Term":
        """Equality atom (``==`` is kept as Python identity comparison)."""
        if self.sort is Sort.BOOL:
            return Iff(self, _coerce_bool(other))
        return _atom(Kind.EQ, self, _coerce_real(other))

    def neq(self, other) -> "Term":
        """Disequality: ``Not(self.eq(other))``."""
        return Not(self.eq(other))

    # -- printing -----------------------------------------------------------

    def __repr__(self) -> str:
        return _to_str(self)


def _to_str(t: Term) -> str:
    if t.kind is Kind.CONST:
        return str(t.value)
    if t.kind is Kind.VAR:
        return t.name or "?"
    if t.kind is Kind.NOT:
        return f"(not {t.args[0]})"
    if t.kind is Kind.NEG:
        return f"(- {t.args[0]})"
    if t.kind is Kind.SCALE:
        return f"({t.value} * {t.args[0]})"
    if t.kind is Kind.ITE:
        return f"(ite {t.args[0]} {t.args[1]} {t.args[2]})"
    inner = " ".join(str(a) for a in t.args)
    return f"({t.kind.value} {inner})"


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

TRUE = Term(Kind.CONST, Sort.BOOL, value=True)
FALSE = Term(Kind.CONST, Sort.BOOL, value=False)


def BoolVal(value: bool) -> Term:
    """Boolean constant."""
    return TRUE if value else FALSE


def RealVal(value: Rational) -> Term:
    """Rational constant."""
    return Term(Kind.CONST, Sort.REAL, value=Fraction(value))


def Bool(name: str) -> Term:
    """Boolean variable (interned by name)."""
    return Term(Kind.VAR, Sort.BOOL, name=name)


def Real(name: str) -> Term:
    """Real-valued variable (interned by name)."""
    return Term(Kind.VAR, Sort.REAL, name=name)


def FreshBool(prefix: str = "b") -> Term:
    """Boolean variable with a globally unique name."""
    return Bool(f"{prefix}!{next(_fresh_counter)}")


def FreshReal(prefix: str = "x") -> Term:
    """Real variable with a globally unique name."""
    return Real(f"{prefix}!{next(_fresh_counter)}")


def _coerce_real(value) -> Term:
    if isinstance(value, Term):
        if value.sort is not Sort.REAL:
            raise SortError(f"expected Real term, got {value!r}")
        return value
    return RealVal(value)


def _coerce_bool(value) -> Term:
    if isinstance(value, Term):
        if value.sort is not Sort.BOOL:
            raise SortError(f"expected Bool term, got {value!r}")
        return value
    return BoolVal(bool(value))


def _flatten(kind: Kind, args: Iterable[Term]) -> list[Term]:
    out: list[Term] = []
    for a in args:
        if a.kind is kind:
            out.extend(a.args)
        else:
            out.append(a)
    return out


def And(*args) -> Term:
    """N-ary conjunction; flattens, drops ``True``, short-circuits ``False``."""
    terms = _flatten(Kind.AND, (_coerce_bool(a) for a in args))
    kept = []
    for t in terms:
        if t is FALSE:
            return FALSE
        if t is not TRUE:
            kept.append(t)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return Term(Kind.AND, Sort.BOOL, tuple(kept))


def Or(*args) -> Term:
    """N-ary disjunction; flattens, drops ``False``, short-circuits ``True``."""
    terms = _flatten(Kind.OR, (_coerce_bool(a) for a in args))
    kept = []
    for t in terms:
        if t is TRUE:
            return TRUE
        if t is not FALSE:
            kept.append(t)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Term(Kind.OR, Sort.BOOL, tuple(kept))


def Not(arg) -> Term:
    """Negation with double-negation and constant folding."""
    t = _coerce_bool(arg)
    if t is TRUE:
        return FALSE
    if t is FALSE:
        return TRUE
    if t.kind is Kind.NOT:
        return t.args[0]
    return Term(Kind.NOT, Sort.BOOL, (t,))


def Implies(a, b) -> Term:
    """Implication ``a => b``."""
    a, b = _coerce_bool(a), _coerce_bool(b)
    if a is TRUE:
        return b
    if a is FALSE or b is TRUE:
        return TRUE
    if b is FALSE:
        return Not(a)
    return Term(Kind.IMPLIES, Sort.BOOL, (a, b))


def Iff(a, b) -> Term:
    """Bi-implication ``a <=> b``."""
    a, b = _coerce_bool(a), _coerce_bool(b)
    if a is b:
        return TRUE
    if a is TRUE:
        return b
    if b is TRUE:
        return a
    if a is FALSE:
        return Not(b)
    if b is FALSE:
        return Not(a)
    return Term(Kind.IFF, Sort.BOOL, (a, b))


def Ite(cond, then, other) -> Term:
    """If-then-else; real- or bool-sorted depending on the branches."""
    cond = _coerce_bool(cond)
    if isinstance(then, Term) and then.sort is Sort.BOOL:
        then, other = _coerce_bool(then), _coerce_bool(other)
        sort = Sort.BOOL
    else:
        then, other = _coerce_real(then), _coerce_real(other)
        sort = Sort.REAL
    if cond is TRUE:
        return then
    if cond is FALSE:
        return other
    if then is other:
        return then
    return Term(Kind.ITE, sort, (cond, then, other))


def Add(*args) -> Term:
    """N-ary sum with constant folding of all-constant sums."""
    terms = _flatten(Kind.ADD, (_coerce_real(a) for a in args))
    terms = [t for t in terms if not (t.is_const() and t.value == 0)]
    if not terms:
        return RealVal(0)
    if len(terms) == 1:
        return terms[0]
    if all(t.is_const() for t in terms):
        return RealVal(sum(t.value for t in terms))
    return Term(Kind.ADD, Sort.REAL, tuple(terms))


def Sum(args: Iterable) -> Term:
    """Sum of an iterable of real terms/constants."""
    return Add(*list(args))


def Neg(arg) -> Term:
    """Arithmetic negation."""
    t = _coerce_real(arg)
    if t.is_const():
        return RealVal(-t.value)
    if t.kind is Kind.NEG:
        return t.args[0]
    return Term(Kind.NEG, Sort.REAL, (t,))


def Mul(a, b) -> Term:
    """Product. At least one factor must be a rational constant.

    Non-constant * non-constant is represented structurally but rejected at
    linear-arithmetic normalization time; callers that need products of two
    unknowns should linearize (see :func:`repro.smt.encodings.select_product`).
    """
    ta = a if isinstance(a, Term) else RealVal(a)
    tb = b if isinstance(b, Term) else RealVal(b)
    if ta.sort is not Sort.REAL or tb.sort is not Sort.REAL:
        raise SortError("Mul requires real-sorted operands")
    if ta.is_const() and tb.is_const():
        return RealVal(ta.value * tb.value)
    if tb.is_const():
        ta, tb = tb, ta
    if ta.is_const():
        c = ta.value
        if c == 0:
            return RealVal(0)
        if c == 1:
            return tb
        if tb.kind is Kind.SCALE:
            return Term(Kind.SCALE, Sort.REAL, tb.args, value=c * tb.value)
        return Term(Kind.SCALE, Sort.REAL, (tb,), value=c)
    # Structurally allowed; linarith will raise NonLinearError if reached.
    return Term(Kind.SCALE, Sort.REAL, (ta, tb), value=None)


def _atom(kind: Kind, lhs: Term, rhs: Term) -> Term:
    if lhs.sort is not Sort.REAL or rhs.sort is not Sort.REAL:
        raise SortError("comparison operands must be real-sorted")
    if lhs.is_const() and rhs.is_const():
        if kind is Kind.LE:
            return BoolVal(lhs.value <= rhs.value)
        if kind is Kind.LT:
            return BoolVal(lhs.value < rhs.value)
        return BoolVal(lhs.value == rhs.value)
    return Term(kind, Sort.BOOL, (lhs, rhs))


def Eq(a, b) -> Term:
    """Equality over reals (or Iff over booleans)."""
    if isinstance(a, Term) and a.sort is Sort.BOOL:
        return Iff(a, b)
    if isinstance(b, Term) and b.sort is Sort.BOOL:
        return Iff(a, b)
    return _coerce_real(a).eq(b)


def substitute(term: Term, mapping: Mapping[Term, Term]) -> Term:
    """Simultaneously substitute subterms per ``mapping`` (bottom-up)."""
    cache: dict[int, Term] = {id(k): v for k, v in mapping.items()}

    def walk(t: Term) -> Term:
        hit = cache.get(id(t))
        if hit is not None:
            return hit
        if not t.args:
            cache[id(t)] = t
            return t
        new_args = tuple(walk(a) for a in t.args)
        if all(n is o for n, o in zip(new_args, t.args)):
            out = t
        else:
            out = _rebuild(t, new_args)
        cache[id(t)] = out
        return out

    return walk(term)


def _rebuild(t: Term, args: tuple[Term, ...]) -> Term:
    k = t.kind
    if k is Kind.NOT:
        return Not(args[0])
    if k is Kind.AND:
        return And(*args)
    if k is Kind.OR:
        return Or(*args)
    if k is Kind.IMPLIES:
        return Implies(*args)
    if k is Kind.IFF:
        return Iff(*args)
    if k is Kind.ITE:
        return Ite(*args)
    if k is Kind.ADD:
        return Add(*args)
    if k is Kind.NEG:
        return Neg(args[0])
    if k is Kind.SCALE:
        if t.value is None:
            return Mul(args[0], args[1])
        return Mul(t.value, args[0])
    if k in (Kind.LE, Kind.LT, Kind.EQ):
        return _atom(k, args[0], args[1])
    raise AssertionError(f"unexpected kind {k}")


#: kinds whose argument order does not affect meaning; their children are
#: sorted during canonical serialization so construction order cannot
#: change a query's cache key
_COMMUTATIVE_KINDS = frozenset({Kind.AND, Kind.OR, Kind.ADD, Kind.IFF, Kind.EQ})

#: id(term) -> canonical serialization.  Terms are interned for as long
#: as the intern table holds them (``Term._table`` keeps strong
#: references), so ids are stable and this memo can never alias two
#: distinct terms; :func:`clear_interned` / :func:`interned_scope` clear
#: or restore it in lockstep with the table.
_canonical_memo: dict[int, str] = {}


def canonical_key(term: Term) -> str:
    """A content-addressed serialization of ``term``.

    Properties the query cache relies on:

    * **injective** — structurally distinct terms serialize differently
      (sorts, names, and exact rational values are all included);
    * **order-insensitive** — arguments of commutative connectives
      (``And``/``Or``/``Add``/``Iff``/``==``) are sorted, so
      ``And(a, b)`` and ``And(b, a)`` share a key;
    * **process-independent** — built from names and values only (no
      ``id()``/``hash()``), so keys agree across worker processes and
      survive on-disk caching.
    """
    hit = _canonical_memo.get(id(term))
    if hit is not None:
        return hit
    # iterative post-order: children serialized before parents
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in _canonical_memo:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.args:
                if id(child) not in _canonical_memo:
                    stack.append((child, False))
            continue
        k = node.kind
        if k is Kind.CONST:
            key = f"(c {node.sort.value} {node.value})"
        elif k is Kind.VAR:
            key = f"(v {node.sort.value} {node.name})"
        else:
            parts = [_canonical_memo[id(a)] for a in node.args]
            if k in _COMMUTATIVE_KINDS:
                parts.sort()
            coeff = f" {node.value}" if k is Kind.SCALE and node.value is not None else ""
            key = f"({k.value}{coeff} {' '.join(parts)})"
        _canonical_memo[id(node)] = key
    return _canonical_memo[id(term)]


def canonical_hash(terms: Iterable[Term]) -> str:
    """Content hash of an assertion *set*.

    The keys of the individual assertions are deduplicated and sorted, so
    neither assertion order nor repetition changes the hash: two solver
    states with the same set of constraints — however they were built —
    address the same cache entry.
    """
    import hashlib

    keys = sorted({canonical_key(t) for t in terms})
    h = hashlib.sha256()
    for k in keys:
        h.update(k.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Intern-table management
# ---------------------------------------------------------------------------
#
# ``Term._table`` holds a strong reference to every term ever built, so a
# long-lived process (portfolio runs, incremental sessions, sweeps) grows
# monotonically.  The hooks below make that growth observable
# (:func:`intern_stats`) and reclaimable at *quiescent points* —
# moments where no live ``Solver``/``TseitinEncoder``/compile memo still
# relies on term identity, e.g. the start of an isolated engine worker or
# the boundary between independent synthesis runs.

#: callbacks invoked whenever the intern table is cleared or restored, so
#: id-keyed side caches (the canonical-key memo here, the compile memo in
#: :mod:`repro.smt.compile`) can drop entries that may alias recycled ids
_intern_listeners: list = []


def register_intern_listener(callback) -> None:
    """Register a zero-arg callback run on :func:`clear_interned` /
    :func:`interned_scope` restore (for invalidating id-keyed caches)."""
    _intern_listeners.append(callback)


def _notify_intern_listeners() -> None:
    for cb in _intern_listeners:
        cb()


def interned_count() -> int:
    """Number of live interned terms."""
    return len(Term._table)


def intern_stats() -> dict:
    """Intern-table accounting: size plus cumulative hit/miss counts."""
    return {
        "interned": len(Term._table),
        "hits": Term._hits,
        "misses": Term._misses,
    }


def clear_interned() -> int:
    """Drop every interned term except the ``TRUE``/``FALSE`` singletons.

    Returns the number of entries dropped.  **Only safe at quiescent
    points**: terms created before the clear stay valid Python objects,
    but a structurally identical term built afterwards is a *new* object,
    so ``is``-identity (and any id-keyed cache) across the boundary is
    meaningless.  Do not call while a ``Solver``, ``SolverSession``, or
    ``CompiledQuery`` you intend to keep using is alive.
    """
    dropped = len(Term._table)
    Term._table.clear()
    _canonical_memo.clear()
    for t in (TRUE, FALSE):
        # re-register the module-level singletons: builders compare
        # against them with ``is``, so they must stay the interned copy
        Term._table[(t.kind, t.sort, (), t.name, t.value)] = t
        dropped -= 1
    _notify_intern_listeners()
    return dropped


class _InternedScope:
    """Context manager: bound intern-table growth to a scope.

    On exit the table (and the canonical-key memo) is restored to its
    entry snapshot, so every term created inside the scope becomes
    collectable.  Pre-existing terms keep their identity throughout.
    Used by engine workers (:mod:`repro.runtime.workers`) so one
    worker's term churn cannot grow the table for the rest of the run.
    Terms created inside the scope must not outlive it.
    """

    def __enter__(self):
        self._table = dict(Term._table)
        self._memo = dict(_canonical_memo)
        return self

    def __exit__(self, *exc):
        Term._table.clear()
        Term._table.update(self._table)
        _canonical_memo.clear()
        _canonical_memo.update(self._memo)
        _notify_intern_listeners()
        return False


def interned_scope() -> _InternedScope:
    """Scope whose term allocations are released on exit (see
    :class:`_InternedScope` for the safety contract)."""
    return _InternedScope()


def evaluate(term: Term, env: Mapping[Term, object]):
    """Evaluate a term under a full assignment ``env`` (vars -> bool/Fraction).

    Used by tests and the enumerative generator to cross-check the solver.
    """
    cache: dict[int, object] = {}

    def walk(t: Term):
        got = cache.get(id(t))
        if got is not None or id(t) in cache:
            return got
        k = t.kind
        if k is Kind.CONST:
            val = t.value
        elif k is Kind.VAR:
            val = env[t]
            if t.sort is Sort.REAL:
                val = Fraction(val)
        elif k is Kind.NOT:
            val = not walk(t.args[0])
        elif k is Kind.AND:
            val = all(walk(a) for a in t.args)
        elif k is Kind.OR:
            val = any(walk(a) for a in t.args)
        elif k is Kind.IMPLIES:
            val = (not walk(t.args[0])) or walk(t.args[1])
        elif k is Kind.IFF:
            val = bool(walk(t.args[0])) == bool(walk(t.args[1]))
        elif k is Kind.ITE:
            val = walk(t.args[1]) if walk(t.args[0]) else walk(t.args[2])
        elif k is Kind.ADD:
            val = sum(walk(a) for a in t.args)
        elif k is Kind.NEG:
            val = -walk(t.args[0])
        elif k is Kind.SCALE:
            if t.value is None:
                val = walk(t.args[0]) * walk(t.args[1])
            else:
                val = t.value * walk(t.args[0])
        elif k is Kind.LE:
            val = walk(t.args[0]) <= walk(t.args[1])
        elif k is Kind.LT:
            val = walk(t.args[0]) < walk(t.args[1])
        elif k is Kind.EQ:
            val = walk(t.args[0]) == walk(t.args[1])
        else:
            raise AssertionError(f"unexpected kind {k}")
        cache[id(t)] = val
        return val

    return walk(term)
