"""Exception hierarchy for the :mod:`repro.smt` solver stack."""


class SmtError(Exception):
    """Base class for all solver-related errors."""


class SortError(SmtError):
    """A term was used where a different sort (Bool/Real) was expected."""


class NonLinearError(SmtError):
    """An arithmetic term could not be normalized to a linear expression.

    The solver implements QF-LRA only; products of two non-constant terms
    must be linearized by the caller (e.g. with the if-then-else expansion
    described in the CCmatic paper, available as
    :func:`repro.smt.encodings.select_product`).
    """


class UnknownResultError(SmtError):
    """A model or core was requested but the last check did not produce one."""


class BudgetExceededError(SmtError):
    """A resource budget (conflicts, propagations, wall clock) was exhausted."""
