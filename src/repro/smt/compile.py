"""The staged compile pipeline: assertion set → :class:`CompiledQuery`.

Every query used to go from raw CCAC terms straight into Tseitin CNF.
This module is the single audited path that sits in front of the encoder
for the Solver, SolverSession, QueryCache, and CcacVerifier:

1. **fold** — bottom-up constant folding, duplicate / complementary
   literal elimination, absorption (:func:`repro.smt.rewrite.simplify`).
2. **ite** — real-sorted ITE lifting with *deterministic* auxiliary
   names (:func:`repro.smt.rewrite.lift_real_ites`), so compiled forms
   are reproducible across processes.
3. **inline** — definition inlining: a top-level conjunct ``v == e``
   with ``v`` a real variable and ``e`` linear in other variables
   substitutes ``e`` for ``v`` everywhere and records ``v`` in the
   reconstruction map.  This removes the equality chains the CCAC model
   and the template's linearized products are full of.
4. **bounds** — interval propagation over single-variable atoms: keeps
   only the tightest lower/upper bound per variable, detects interval
   conflicts (→ ``False``), and fixes variables whose interval collapses
   to a point (``lo == hi``), eliminating them like stage 3.
5. **atoms** — equality elimination plus linear-atom canonicalization
   (:func:`repro.smt.rewrite.canonicalize_atoms`): every spelling of a
   half-space becomes one interned atom term, so the encoder allocates
   one SAT variable and one Simplex row for all of them.
6. **refine** — post-canonicalization fixpoint of two cheap entailment
   passes that need canonical atom spellings to fire:

   * *unit literal propagation* — a top-level literal conjunct ``L``
     (an atom, a bool variable, or a negation of either) rewrites every
     *other* conjunct under ``L -> true`` (``L ∧ φ  ≡  L ∧ φ[L→⊤]``),
     collapsing disjuncts the model already decided;
   * *interval entailment* — single-variable atoms *nested inside*
     other conjuncts that the global interval map already decides fold
     to ``true``/``false`` (e.g. a ``cwnd_t <= 0`` disjunct under a
     ``cwnd_t >= 1/10`` floor), which in turn exposes new units,
     points, and definitions for another iteration.

Stages 1–4 iterate to a fixpoint (bounded by
:attr:`CompileOptions.max_rounds`); stage 5 runs once, and stage 6
iterates to its own fixpoint under the same bound.

Soundness of variable elimination
---------------------------------
Stages 3/4 preserve *equivalence up to the eliminated variables*: for
every model of the compiled query, extending it with the recorded
definitions (:meth:`CompiledQuery.reconstruct`) yields a model of the
original query, and every model of the original restricts to a model of
the compiled one.  Two rules keep this airtight in incremental use:

* **Frozen variables** (``frozen=`` argument): a variable that an
  earlier compile already put into the solver's encoding must *not* be
  eliminated — a later ``add(x == 3)`` must constrain the existing
  ``x``, not substitute it away.  For frozen variables only constant
  values are propagated, and the defining conjunct is kept (pinned) so
  the solver still sees the constraint.
* **Resolved definitions**: the reconstruction map is kept resolved —
  a definition never references another eliminated variable — so model
  reconstruction is a single linear evaluation per variable, in any
  order.

Cache keys move post-simplification: :attr:`CompiledQuery.key` hashes
the compiled formulas, so queries that differ only in folded structure,
atom spelling, or eliminated definitions hit the same cache entry.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Optional

from ..obs import DEBUG, metrics, tracer
from . import rewrite
from .cnf import TseitinEncoder
from .errors import NonLinearError, SortError
from .linarith import LinAtom, LinExpr, normalize_atom
from .preprocess import eliminate_eq, preprocess
from .terms import (
    FALSE,
    TRUE,
    Kind,
    RealVal,
    Sort,
    Term,
    canonical_hash,
    register_intern_listener,
    substitute,
)

__all__ = [
    "CompileOptions",
    "CompileStats",
    "CompiledQuery",
    "Cnf",
    "compile_query",
    "pipeline_disabled",
    "pipeline_enabled",
    "set_pipeline_enabled",
]


# ---------------------------------------------------------------------------
# Pipeline switch (the --no-compile-pipeline escape hatch)
# ---------------------------------------------------------------------------

#: environment escape hatch; also settable via the CLI flag
#: ``--no-compile-pipeline`` (exported so worker processes inherit it)
ENV_FLAG = "REPRO_NO_COMPILE_PIPELINE"

_override: Optional[bool] = None


def pipeline_enabled() -> bool:
    """Whether new :class:`~repro.smt.solver.Solver` instances compile
    through the pipeline (process override wins over the environment)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_FLAG, "").lower() not in {"1", "true", "yes", "on"}


def set_pipeline_enabled(on: Optional[bool]) -> None:
    """Force the pipeline on/off for this process (``None`` restores the
    environment-derived default).  Affects solvers built afterwards."""
    global _override
    _override = on


@contextmanager
def pipeline_disabled():
    """Scope in which new solvers take the raw (pre-pipeline) encode path."""
    global _override
    prev = _override
    _override = False
    try:
        yield
    finally:
        _override = prev


# ---------------------------------------------------------------------------
# Options / results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileOptions:
    """Which stages run; all on by default.  Frozen so option sets can
    key the compile memo."""

    fold: bool = True
    lift_ites: bool = True
    inline_defs: bool = True
    propagate_bounds: bool = True
    canonicalize: bool = True
    #: post-canonicalization unit-literal propagation (stage 6)
    propagate_units: bool = True
    #: fixpoint bound for the fold/ite/inline/bounds loop
    max_rounds: int = 4


DEFAULT_OPTIONS = CompileOptions()


@dataclass
class CompileStats:
    """Before/after accounting of one compile (exported to obs)."""

    nodes_before: int = 0
    nodes_after: int = 0
    atoms_before: int = 0
    atoms_after: int = 0
    vars_eliminated: int = 0
    rounds: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class Cnf:
    """Standalone clausal form of a compiled query (for inspection and
    benchmarking — the live solver encodes into its own SAT core).

    ``atoms`` maps theory SAT variables to their canonical
    :class:`~repro.smt.linarith.LinAtom`.
    """

    num_vars: int
    clauses: tuple
    atoms: Mapping[int, LinAtom]


class _SatSink:
    """Minimal stand-in for :class:`~repro.smt.sat.SatSolver` that just
    records clauses (duck-typed against :class:`TseitinEncoder`)."""

    __slots__ = ("num_vars", "clauses")

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self, theory_atom: bool = False) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits) -> None:
        self.clauses.append(tuple(lits))


class _TheorySink:
    """Records atom registrations instead of building a Simplex tableau."""

    __slots__ = ("atoms",)

    def __init__(self):
        self.atoms: dict[int, LinAtom] = {}

    def register_atom(self, atom: LinAtom, var: int) -> None:
        self.atoms[var] = atom


class CompiledQuery:
    """The IR a query becomes: simplified conjuncts, the variable
    reconstruction map, and (lazily) its cache key, atom table and CNF.

    ``formulas`` is the simplified, canonicalized conjunct tuple — the
    exact terms a solver asserts.  ``eliminated`` is a tuple of
    ``(variable, defining linear term)`` pairs; definitions reference
    only surviving variables (see the module docstring), so
    :meth:`reconstruct` extends any model of ``formulas`` back to a model
    of the original assertion set.
    """

    __slots__ = ("formulas", "eliminated", "stats", "_key", "_cnf", "_atoms")

    def __init__(
        self,
        formulas: tuple[Term, ...],
        eliminated: tuple[tuple[Term, Term], ...],
        stats: CompileStats,
    ):
        self.formulas = formulas
        self.eliminated = eliminated
        self.stats = stats
        self._key: Optional[str] = None
        self._cnf: Optional[Cnf] = None
        self._atoms: Optional[dict[LinAtom, Term]] = None

    @property
    def key(self) -> str:
        """Content hash of the *post-simplification* form — the cache key."""
        if self._key is None:
            self._key = canonical_hash(self.formulas)
        return self._key

    def is_false(self) -> bool:
        """True when the pipeline already refuted the query."""
        return any(f is FALSE for f in self.formulas)

    def atom_table(self) -> dict[LinAtom, Term]:
        """Distinct theory atoms (canonical upper form) → one term
        spelling them.  The size of this table is the number of Simplex
        rows the query costs."""
        if self._atoms is None:
            atoms: dict[LinAtom, Term] = {}
            for f in self.formulas:
                for node in f.iter_dag():
                    if node.kind not in (Kind.LE, Kind.LT):
                        continue
                    try:
                        la = normalize_atom(node)
                    except NonLinearError:
                        continue
                    if isinstance(la, bool):
                        continue
                    if not la.upper:
                        la = la.negate()
                    atoms.setdefault(la, node)
            self._atoms = atoms
        return self._atoms

    def cnf(self) -> Cnf:
        """Clausal form, computed against throwaway sinks.

        Runs the legacy :func:`preprocess` first so the encoding works
        even for partially-disabled option sets (on fully compiled
        formulas it is the identity)."""
        if self._cnf is None:
            sat_sink = _SatSink()
            theory_sink = _TheorySink()
            encoder = TseitinEncoder(sat_sink, theory_sink)  # type: ignore[arg-type]
            for f in self.formulas:
                encoder.assert_formula(preprocess(f))
            self._cnf = Cnf(sat_sink.num_vars, tuple(sat_sink.clauses), theory_sink.atoms)
        return self._cnf

    def reconstruct(self, reals: Mapping[Term, Fraction]) -> dict[Term, Fraction]:
        """Values of the eliminated variables under a model of
        ``formulas``.  Variables absent from ``reals`` default to 0,
        matching the solver's don't-care convention."""
        out: dict[Term, Fraction] = {}
        for var, defn in self.eliminated:
            expr = LinExpr.from_term(defn)
            total = expr.const
            for v, c in expr.coeffs.items():
                total += c * Fraction(reals.get(v, 0))
            out[var] = total
        return out


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

_MEMO_MAX = 128

#: (input term ids, options, frozen var ids) -> CompiledQuery.  Valid
#: because interned term ids are stable; cleared whenever the intern
#: table is cleared/restored (id reuse would alias entries).
_memo: "OrderedDict[tuple, CompiledQuery]" = OrderedDict()


def _memo_clear() -> None:
    _memo.clear()


register_intern_listener(_memo_clear)


def compile_query(
    formulas: Iterable[Term],
    options: Optional[CompileOptions] = None,
    frozen: Iterable[Term] = (),
) -> CompiledQuery:
    """Compile an assertion set through the staged pipeline.

    ``frozen`` names variables that earlier compiles already encoded into
    a live solver; they are never eliminated (only constant values are
    propagated, with the defining conjunct pinned).
    """
    opts = options if options is not None else DEFAULT_OPTIONS
    fs = tuple(formulas)
    frozen_ids = frozenset(id(v) for v in frozen)
    memo_key = (tuple(id(f) for f in fs), opts, frozen_ids)
    hit = _memo.get(memo_key)
    if hit is not None:
        _memo.move_to_end(memo_key)
        metrics().counter("compile.memo_hits").inc()
        return hit
    out = _compile(fs, opts, frozen_ids)
    _memo[memo_key] = out
    if len(_memo) > _MEMO_MAX:
        _memo.popitem(last=False)
    return out


def _stage(tr, name: str):
    return tr.span(name, level=DEBUG) if tr.enabled else nullcontext()


def _count_nodes(formulas) -> int:
    seen: set[int] = set()
    for f in formulas:
        for node in f.iter_dag():
            seen.add(id(node))
    return len(seen)


def _count_atoms(formulas) -> int:
    seen: set[int] = set()
    for f in formulas:
        for node in f.iter_dag():
            if node.kind in (Kind.LE, Kind.LT, Kind.EQ):
                seen.add(id(node))
    return len(seen)


def _flatten_conjuncts(formulas: Iterable[Term]) -> list[Term]:
    """Split top-level conjunctions, drop ``True``, dedup by identity.
    A ``False`` conjunct collapses the whole set."""
    out: list[Term] = []
    seen: set[int] = set()
    for f in formulas:
        parts = f.args if f.kind is Kind.AND else (f,)
        for p in parts:
            if p is TRUE or id(p) in seen:
                continue
            if p is FALSE:
                return [FALSE]
            seen.add(id(p))
            out.append(p)
    return out


def _compile(fs: tuple[Term, ...], opts: CompileOptions, frozen_ids: frozenset) -> CompiledQuery:
    tr = tracer()
    reg = metrics()
    stats = CompileStats()
    stats.nodes_before = _count_nodes(fs)
    stats.atoms_before = _count_atoms(fs)
    start = time.perf_counter()

    span = (
        tr.span("smt.compile", level=DEBUG, formulas=len(fs), frozen=len(frozen_ids))
        if tr.enabled
        else nullcontext()
    )
    with span:
        conjuncts = _flatten_conjuncts(fs)
        eliminated: dict[Term, Term] = {}
        pins: list[Term] = []
        emitted_ites: set[str] = set()

        for round_no in range(1, opts.max_rounds + 1):
            stats.rounds = round_no
            before = tuple(id(c) for c in conjuncts)
            if opts.fold:
                with _stage(tr, "compile.fold"):
                    conjuncts = _flatten_conjuncts(
                        rewrite.simplify(c) for c in conjuncts
                    )
            if conjuncts == [FALSE]:
                break
            if opts.lift_ites:
                with _stage(tr, "compile.ite"):
                    conjuncts = _ite_pass(conjuncts, emitted_ites)
            if opts.inline_defs:
                with _stage(tr, "compile.inline"):
                    conjuncts = _inline_pass(conjuncts, eliminated, frozen_ids, pins)
            if opts.propagate_bounds:
                with _stage(tr, "compile.bounds"):
                    conjuncts = _bounds_pass(conjuncts, eliminated, frozen_ids, pins)
            if conjuncts == [FALSE] or tuple(id(c) for c in conjuncts) == before:
                break

        with _stage(tr, "compile.atoms"):
            final: list[Term] = []
            for c in conjuncts + pins:
                c = eliminate_eq(c)
                if opts.canonicalize:
                    c = rewrite.canonicalize_atoms(c)
                if opts.fold:
                    c = rewrite.simplify(c)
                final.append(c)
            conjuncts = _flatten_conjuncts(final)
            pins = []  # folded in above; refinement may grow new ones

        # stage 6: units/entailment refinement — both passes key on exact
        # atom identity, so they run after canonicalization has merged
        # the spellings
        for _ in range(opts.max_rounds):
            before = tuple(id(c) for c in conjuncts)
            if conjuncts == [FALSE]:
                break
            if opts.propagate_units:
                with _stage(tr, "compile.units"):
                    conjuncts = _units_pass(conjuncts)
            if conjuncts != [FALSE] and opts.propagate_bounds:
                with _stage(tr, "compile.bounds"):
                    conjuncts = _bounds_pass(
                        conjuncts, eliminated, frozen_ids, pins
                    )
            if pins:
                conjuncts = _flatten_conjuncts(conjuncts + [
                    eliminate_eq(p) for p in pins
                ])
                pins = []
            cleaned = []
            for c in conjuncts:
                if opts.canonicalize:
                    c = rewrite.canonicalize_atoms(c)
                if opts.fold:
                    c = rewrite.simplify(c)
                cleaned.append(c)
            conjuncts = _flatten_conjuncts(cleaned)
            if conjuncts == [FALSE] or tuple(id(c) for c in conjuncts) == before:
                break
            stats.rounds += 1

        out = CompiledQuery(
            tuple(conjuncts),
            tuple(sorted(eliminated.items(), key=lambda p: p[0].name or "")),
            stats,
        )
        stats.nodes_after = _count_nodes(out.formulas)
        stats.atoms_after = _count_atoms(out.formulas)
        stats.vars_eliminated = len(eliminated)

        if isinstance(span, nullcontext):
            pass
        else:
            span.set(
                rounds=stats.rounds,
                nodes_before=stats.nodes_before,
                nodes_after=stats.nodes_after,
                atoms_before=stats.atoms_before,
                atoms_after=stats.atoms_after,
                eliminated=stats.vars_eliminated,
            )

    reg.counter("compile.queries").inc()
    reg.counter("compile.nodes_before").inc(stats.nodes_before)
    reg.counter("compile.nodes_after").inc(stats.nodes_after)
    reg.counter("compile.atoms_before").inc(stats.atoms_before)
    reg.counter("compile.atoms_after").inc(stats.atoms_after)
    reg.counter("compile.vars_eliminated").inc(stats.vars_eliminated)
    reg.histogram("compile.time").observe(time.perf_counter() - start)
    return out


# -- stage: ITE lifting ------------------------------------------------------


def _ite_pass(conjuncts: list[Term], emitted: set[str]) -> list[Term]:
    side: list[Term] = []
    out = [rewrite.lift_real_ites(c, side, emitted) for c in conjuncts]
    if not side:
        return out
    return _flatten_conjuncts(out + side)


# -- stage: definition inlining ----------------------------------------------


def _chain(subst: dict[Term, Term], var: Term, defn: Term) -> None:
    """Add ``var -> defn`` keeping the invariant that no substitution
    value references a substitution key."""
    if subst:
        upd = {var: defn}
        for v in list(subst):
            subst[v] = substitute(subst[v], upd)
    subst[var] = defn


def _try_def(
    conjunct: Term,
    subst: dict[Term, Term],
    frozen_ids: frozenset,
    pins: list[Term],
) -> bool:
    """If ``conjunct`` is a usable definition ``v == e``, record it in
    ``subst`` and return True (the caller drops the conjunct)."""
    lhs, rhs = conjunct.args
    for var, body in ((lhs, rhs), (rhs, lhs)):
        if var.kind is not Kind.VAR or var.sort is not Sort.REAL or var in subst:
            continue
        resolved = substitute(body, subst) if subst else body
        try:
            expr = LinExpr.from_term(resolved)
        except (NonLinearError, SortError):
            continue
        if var in expr.coeffs:
            continue  # self-referential (e.g. x == x + 1 is unsat, not a def)
        if id(var) in frozen_ids:
            if expr.coeffs:
                continue  # frozen: only constants propagate
            _chain(subst, var, RealVal(expr.const))
            pins.append(var.eq(RealVal(expr.const)))
            return True
        _chain(subst, var, resolved)
        return True
    return False


def _inline_pass(
    conjuncts: list[Term],
    eliminated: dict[Term, Term],
    frozen_ids: frozenset,
    pins: list[Term],
) -> list[Term]:
    subst: dict[Term, Term] = {}
    keep: list[Term] = []
    for c in conjuncts:
        if c.kind is Kind.EQ and _try_def(c, subst, frozen_ids, pins):
            continue
        keep.append(c)
    if not subst:
        return conjuncts
    _record_eliminations(eliminated, subst, frozen_ids)
    return _flatten_conjuncts(substitute(c, subst) for c in keep)


def _record_eliminations(
    eliminated: dict[Term, Term], subst: dict[Term, Term], frozen_ids: frozenset
) -> None:
    """Fold a substitution batch into the reconstruction map, keeping
    definitions resolved (values never reference eliminated variables).
    Frozen variables are propagated but *not* recorded — they survive in
    the solver and get their values from the model directly."""
    for v in list(eliminated):
        eliminated[v] = substitute(eliminated[v], subst)
    for v, d in subst.items():
        if id(v) not in frozen_ids:
            eliminated[v] = d


# -- stage: unit literal propagation -----------------------------------------


def _unit_literal(conjunct: Term):
    """``(base, truth)`` when the conjunct is a literal — a theory atom
    or bool variable, possibly under one ``Not`` — else None."""
    neg = conjunct.kind is Kind.NOT
    t = conjunct.args[0] if neg else conjunct
    if t.kind in (Kind.LE, Kind.LT) or (
        t.kind is Kind.VAR and t.sort is Sort.BOOL
    ):
        return t, (FALSE if neg else TRUE)
    return None


def _units_pass(conjuncts: list[Term]) -> list[Term]:
    """Top-level unit literal propagation: ``L ∧ φ ≡ L ∧ φ[L→⊤]``.

    Every literal conjunct is kept as asserted, and its truth value is
    substituted into all *other* conjuncts (matching by interned atom
    identity — canonicalization has already merged spellings).  Opposite
    literals over the same base refute the query outright.
    """
    facts: dict[Term, Term] = {}
    for c in conjuncts:
        lit = _unit_literal(c)
        if lit is None:
            continue
        base, truth = lit
        prev = facts.get(base)
        if prev is not None and prev is not truth:
            return [FALSE]
        facts[base] = truth
    if not facts:
        return conjuncts
    out: list[Term] = []
    changed = False
    for c in conjuncts:
        if _unit_literal(c) is not None:
            out.append(c)
            continue
        new = substitute(c, facts)
        changed = changed or new is not c
        out.append(new)
    return _flatten_conjuncts(out) if changed else conjuncts


# -- stage: interval bounds propagation --------------------------------------


class _Interval:
    __slots__ = ("lo", "lo_strict", "hi", "hi_strict")

    def __init__(self):
        self.lo: Optional[Fraction] = None
        self.lo_strict = False
        self.hi: Optional[Fraction] = None
        self.hi_strict = False

    def add_upper(self, bound: Fraction, strict: bool) -> None:
        if self.hi is None or bound < self.hi or (bound == self.hi and strict):
            self.hi, self.hi_strict = bound, strict

    def add_lower(self, bound: Fraction, strict: bool) -> None:
        if self.lo is None or bound > self.lo or (bound == self.lo and strict):
            self.lo, self.lo_strict = bound, strict

    def empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_strict or self.hi_strict)

    def point(self) -> Optional[Fraction]:
        if (
            self.lo is not None
            and self.lo == self.hi
            and not self.lo_strict
            and not self.hi_strict
        ):
            return self.lo
        return None


def _unit_atom(conjunct: Term):
    """``(var, LinAtom)`` when the conjunct is a single-variable bound
    (possibly under ``Not``), a bool for ground atoms, else None."""
    negated = False
    t = conjunct
    if t.kind is Kind.NOT:
        negated = True
        t = t.args[0]
    if t.kind not in (Kind.LE, Kind.LT):
        return None
    try:
        la = normalize_atom(t)
    except NonLinearError:
        return None
    if isinstance(la, bool):
        return (not la) if negated else la
    if negated:
        la = la.negate()
    if len(la.expr) != 1:
        return None
    return la.expr[0][0], la


def _decide_atom(la: LinAtom, iv: _Interval) -> Optional[bool]:
    """Truth value of single-variable atom ``la`` (lead coefficient +1)
    under interval ``iv``, or None when the interval doesn't decide it."""
    b = la.bound
    if la.upper:  # v <= b (strict: v < b)
        if iv.hi is not None and (
            iv.hi < b or (iv.hi == b and (not la.strict or iv.hi_strict))
        ):
            return True
        if iv.lo is not None and (
            iv.lo > b or (iv.lo == b and (la.strict or iv.lo_strict))
        ):
            return False
    else:  # v >= b (strict: v > b)
        if iv.lo is not None and (
            iv.lo > b or (iv.lo == b and (not la.strict or iv.lo_strict))
        ):
            return True
        if iv.hi is not None and (
            iv.hi < b or (iv.hi == b and (la.strict or iv.hi_strict))
        ):
            return False
    return None


def _entailment_folds(others: list[Term], intervals: dict[Term, _Interval]):
    """Nested single-variable atoms that the interval map already
    decides, mapped to their truth constant (for substitution)."""
    folds: dict[Term, Term] = {}
    seen: set[int] = set()
    for c in others:
        for node in c.iter_dag():
            if node.kind not in (Kind.LE, Kind.LT) or id(node) in seen:
                continue
            seen.add(id(node))
            try:
                la = normalize_atom(node)
            except NonLinearError:
                continue
            if isinstance(la, bool) or len(la.expr) != 1:
                continue
            iv = intervals.get(la.expr[0][0])
            if iv is None:
                continue
            verdict = _decide_atom(la, iv)
            if verdict is not None:
                folds[node] = TRUE if verdict else FALSE
    return folds


def _bounds_pass(
    conjuncts: list[Term],
    eliminated: dict[Term, Term],
    frozen_ids: frozenset,
    pins: list[Term],
) -> list[Term]:
    intervals: dict[Term, _Interval] = {}
    others: list[Term] = []
    for c in conjuncts:
        unit = _unit_atom(c)
        if unit is None:
            others.append(c)
            continue
        if isinstance(unit, bool):
            if not unit:
                return [FALSE]
            continue  # ground-true bound: drop
        var, la = unit
        iv = intervals.setdefault(var, _Interval())
        # single-variable atoms have lead coefficient +1, so upper/lower
        # map directly onto the interval ends
        if la.upper:
            iv.add_upper(la.bound, la.strict)
        else:
            iv.add_lower(la.bound, la.strict)

    if intervals:
        folds = _entailment_folds(others, intervals)
        if folds:
            others = [substitute(c, folds) for c in others]

    fixes: dict[Term, Term] = {}
    units: list[Term] = []
    for var in sorted(intervals, key=lambda v: v.name or ""):
        iv = intervals[var]
        if iv.empty():
            return [FALSE]
        val = iv.point()
        if val is not None:
            if id(var) in frozen_ids:
                pins.append(var.eq(RealVal(val)))
            _chain(fixes, var, RealVal(val))
            continue
        one = ((var, Fraction(1)),)
        if iv.hi is not None:
            units.append(rewrite.atom_term(LinAtom(one, iv.hi, True, iv.hi_strict)))
        if iv.lo is not None:
            units.append(rewrite.atom_term(LinAtom(one, iv.lo, False, iv.lo_strict)))

    if fixes:
        _record_eliminations(eliminated, fixes, frozen_ids)
        others = [substitute(c, fixes) for c in others]
    return _flatten_conjuncts(others + units)
