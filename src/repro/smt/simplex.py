"""Incremental Simplex for linear real arithmetic (Dutertre–de Moura).

This is the theory core behind the DPLL(T) solver: it maintains a tableau
of linear equalities ``basic = sum(coeff * nonbasic)`` plus per-variable
bounds, supports asserting/retracting bounds along the SAT trail, and
decides feasibility by Bland-rule pivoting.  All arithmetic is exact
(:class:`fractions.Fraction`); strict inequalities are handled with
δ-rationals (:class:`DRat`), pairs ``r + d·δ`` for an infinitesimal δ.

The design follows "A Fast Linear-Arithmetic Solver for DPLL(T)"
(Dutertre & de Moura, CAV 2006): backtracking only restores bounds — the
tableau and the current assignment are kept, so pops are O(#bounds).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional


class DRat:
    """δ-rational ``r + d·δ`` for an infinitesimal positive δ.

    Ordering is lexicographic on ``(r, d)``, which matches the semantics
    of strict bounds: ``x < c`` is ``x <= c - δ``.
    """

    __slots__ = ("r", "d")

    def __init__(self, r, d=0):
        self.r = Fraction(r)
        self.d = Fraction(d)

    def __add__(self, other: "DRat") -> "DRat":
        return DRat(self.r + other.r, self.d + other.d)

    def __sub__(self, other: "DRat") -> "DRat":
        return DRat(self.r - other.r, self.d - other.d)

    def scale(self, k: Fraction) -> "DRat":
        return DRat(self.r * k, self.d * k)

    def __eq__(self, other) -> bool:
        return isinstance(other, DRat) and self.r == other.r and self.d == other.d

    def __lt__(self, other: "DRat") -> bool:
        return (self.r, self.d) < (other.r, other.d)

    def __le__(self, other: "DRat") -> bool:
        return (self.r, self.d) <= (other.r, other.d)

    def __gt__(self, other: "DRat") -> bool:
        return (self.r, self.d) > (other.r, other.d)

    def __ge__(self, other: "DRat") -> bool:
        return (self.r, self.d) >= (other.r, other.d)

    def __hash__(self) -> int:
        return hash((self.r, self.d))

    def concretize(self, delta: Fraction) -> Fraction:
        """Substitute a concrete positive rational for δ."""
        return self.r + self.d * delta

    def __repr__(self) -> str:
        if self.d == 0:
            return str(self.r)
        sign = "+" if self.d > 0 else "-"
        return f"{self.r} {sign} {abs(self.d)}δ"


ZERO = DRat(0)


class Conflict(list):
    """A list of explanation tags whose bounds are jointly inconsistent.

    In proof mode the conflict also carries ``farkas``: a tuple of
    ``(tag, Fraction)`` pairs giving nonnegative multipliers over the
    tags' inequalities whose combination is contradictory (the variable
    parts cancel and the constant is impossible).  The tableau invariant
    behind it: every simplex variable denotes a fixed linear form over
    the original problem variables (a slack variable denotes its
    registered atom's expression, and pivoting preserves row semantics),
    so multipliers computed in simplex space are valid over the original
    inequalities the tags assert.
    """

    farkas = None


class Simplex:
    """Incremental simplex over exact δ-rationals.

    Variables are dense ints.  Bounds carry an opaque *explanation tag*
    (the SAT literal that asserted them); conflicts are reported as lists
    of these tags.
    """

    def __init__(self):
        self.nvars = 0
        self.lower: list[Optional[DRat]] = []
        self.upper: list[Optional[DRat]] = []
        self.lower_tag: list = []
        self.upper_tag: list = []
        self.assign: list[DRat] = []
        # rows: basic var -> {nonbasic var: Fraction}
        self.rows: dict[int, dict[int, Fraction]] = {}
        # cols: nonbasic var -> set of basic vars whose row mentions it
        self.cols: dict[int, set[int]] = {}
        self.basic: set[int] = set()
        # undo machinery
        self._trail: list[tuple[int, str, Optional[DRat], object]] = []
        self._level_marks: list[int] = []
        self.pivots = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        v = self.nvars
        self.nvars += 1
        self.lower.append(None)
        self.upper.append(None)
        self.lower_tag.append(None)
        self.upper_tag.append(None)
        self.assign.append(ZERO)
        self.cols[v] = set()
        return v

    def add_row(self, expr: dict[int, Fraction]) -> int:
        """Introduce a slack variable ``s`` with ``s = expr`` and return it.

        ``expr`` maps existing variables to coefficients; any basic
        variables in it are substituted by their rows so the new row only
        mentions nonbasic variables.
        """
        s = self.new_var()
        row: dict[int, Fraction] = {}
        for var, coeff in expr.items():
            if var in self.basic:
                for v2, c2 in self.rows[var].items():
                    row[v2] = row.get(v2, Fraction(0)) + coeff * c2
            else:
                row[var] = row.get(var, Fraction(0)) + coeff
        row = {v: c for v, c in row.items() if c != 0}
        self.rows[s] = row
        self.basic.add(s)
        for var in row:
            self.cols[var].add(s)
        self.assign[s] = self._row_value(row)
        return s

    def _row_value(self, row: dict[int, Fraction]) -> DRat:
        total = ZERO
        for var, coeff in row.items():
            total = total + self.assign[var].scale(coeff)
        return total

    # ------------------------------------------------------------------
    # Bound assertion / retraction
    # ------------------------------------------------------------------

    def push_level(self) -> None:
        self._level_marks.append(len(self._trail))

    def pop_levels(self, count: int) -> None:
        if count <= 0 or not self._level_marks:
            return
        count = min(count, len(self._level_marks))
        mark = self._level_marks[-count]
        del self._level_marks[-count:]
        while len(self._trail) > mark:
            var, which, old_bound, old_tag = self._trail.pop()
            if which == "L":
                self.lower[var] = old_bound
                self.lower_tag[var] = old_tag
            else:
                self.upper[var] = old_bound
                self.upper_tag[var] = old_tag

    def reset_bounds(self) -> None:
        """Retract every bound (level-0 included); tableau is kept."""
        self._trail.clear()
        self._level_marks.clear()
        for v in range(self.nvars):
            self.lower[v] = None
            self.upper[v] = None
            self.lower_tag[v] = None
            self.upper_tag[v] = None

    def assert_upper(self, var: int, bound: DRat, tag) -> Optional[Conflict]:
        """Assert ``var <= bound``; returns a conflict or None."""
        current = self.upper[var]
        if current is not None and bound >= current:
            return None
        low = self.lower[var]
        if low is not None and bound < low:
            conflict = Conflict([tag, self.lower_tag[var]])
            # new upper u below existing lower l: 1*(x <= u) + 1*(x >= l)
            conflict.farkas = ((tag, Fraction(1)), (self.lower_tag[var], Fraction(1)))
            return conflict
        self._trail.append((var, "U", current, self.upper_tag[var]))
        self.upper[var] = bound
        self.upper_tag[var] = tag
        if var not in self.basic and self.assign[var] > bound:
            self._update(var, bound)
        return None

    def assert_lower(self, var: int, bound: DRat, tag) -> Optional[Conflict]:
        """Assert ``var >= bound``; returns a conflict or None."""
        current = self.lower[var]
        if current is not None and bound <= current:
            return None
        up = self.upper[var]
        if up is not None and bound > up:
            conflict = Conflict([tag, self.upper_tag[var]])
            conflict.farkas = ((tag, Fraction(1)), (self.upper_tag[var], Fraction(1)))
            return conflict
        self._trail.append((var, "L", current, self.lower_tag[var]))
        self.lower[var] = bound
        self.lower_tag[var] = tag
        if var not in self.basic and self.assign[var] < bound:
            self._update(var, bound)
        return None

    def _update(self, var: int, value: DRat) -> None:
        delta = value - self.assign[var]
        for b in self.cols[var]:
            coeff = self.rows[b].get(var)
            if coeff:
                self.assign[b] = self.assign[b] + delta.scale(coeff)
        self.assign[var] = value

    # ------------------------------------------------------------------
    # Feasibility check
    # ------------------------------------------------------------------

    def check(self) -> Optional[Conflict]:
        """Pivot until all bounds hold; returns a conflict or None."""
        while True:
            violated = -1
            below = False
            for b in sorted(self.basic):  # Bland's rule: smallest index
                val = self.assign[b]
                lo = self.lower[b]
                if lo is not None and val < lo:
                    violated, below = b, True
                    break
                up = self.upper[b]
                if up is not None and val > up:
                    violated, below = b, False
                    break
            if violated < 0:
                return None
            b = violated
            row = self.rows[b]
            pivot_var = -1
            for j in sorted(row):
                coeff = row[j]
                if below:
                    can = (coeff > 0 and (self.upper[j] is None or self.assign[j] < self.upper[j])) or (
                        coeff < 0 and (self.lower[j] is None or self.assign[j] > self.lower[j])
                    )
                else:
                    can = (coeff < 0 and (self.upper[j] is None or self.assign[j] < self.upper[j])) or (
                        coeff > 0 and (self.lower[j] is None or self.assign[j] > self.lower[j])
                    )
                if can:
                    pivot_var = j
                    break
            if pivot_var < 0:
                return self._explain(b, below)
            target = self.lower[b] if below else self.upper[b]
            assert target is not None
            self._pivot_and_update(b, pivot_var, target)

    def _explain(self, b: int, below: bool) -> Conflict:
        # Farkas multipliers: the row says b - sum(a_j * x_j) = 0, so when b is
        # stuck below its lower bound, 1*(b >= l) plus |a_j| times each
        # blocking bound on x_j sums to a contradiction (and symmetrically
        # above).  Multipliers are over the tagged source inequalities.
        row = self.rows[b]
        pairs = []
        if below:
            pairs.append((self.lower_tag[b], Fraction(1)))
            for j, coeff in row.items():
                tag = self.upper_tag[j] if coeff > 0 else self.lower_tag[j]
                pairs.append((tag, abs(coeff)))
        else:
            pairs.append((self.upper_tag[b], Fraction(1)))
            for j, coeff in row.items():
                tag = self.lower_tag[j] if coeff > 0 else self.upper_tag[j]
                pairs.append((tag, abs(coeff)))
        conflict = Conflict([t for t, _ in pairs if t is not None])
        conflict.farkas = tuple((t, c) for t, c in pairs if t is not None)
        return conflict

    def _pivot_and_update(self, b: int, j: int, v: DRat) -> None:
        self.pivots += 1
        a_bj = self.rows[b][j]
        theta = (v - self.assign[b]).scale(Fraction(1) / a_bj)
        self.assign[b] = v
        self.assign[j] = self.assign[j] + theta
        for b2 in self.cols[j]:
            if b2 != b:
                coeff = self.rows[b2].get(j)
                if coeff:
                    self.assign[b2] = self.assign[b2] + theta.scale(coeff)
        self._pivot(b, j)

    def _pivot(self, b: int, j: int) -> None:
        """Swap basic ``b`` with nonbasic ``j``."""
        row = self.rows.pop(b)
        self.basic.discard(b)
        a_bj = row.pop(j)
        self.cols[j].discard(b)
        # j = (b - sum_{k != j} a_k x_k) / a_bj
        new_row: dict[int, Fraction] = {b: Fraction(1) / a_bj}
        for k, a_k in row.items():
            new_row[k] = -a_k / a_bj
            self.cols[k].discard(b)
        self.rows[j] = new_row
        self.basic.add(j)
        self.cols.setdefault(b, set()).add(j)
        for k in new_row:
            if k != b:
                self.cols[k].add(j)
        # substitute j in every other row that mentions it
        for b2 in list(self.cols[j]):
            if b2 == j:
                continue
            row2 = self.rows[b2]
            c = row2.pop(j, None)
            if c is None:
                continue
            for k, a_k in new_row.items():
                nv = row2.get(k, Fraction(0)) + c * a_k
                if nv == 0:
                    if k in row2:
                        del row2[k]
                        self.cols[k].discard(b2)
                else:
                    if k not in row2:
                        self.cols[k].add(b2)
                    row2[k] = nv
        self.cols[j] = set()

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------

    def concrete_delta(self) -> Fraction:
        """A positive rational value for δ under which the current
        assignment satisfies every asserted bound concretely."""
        delta = Fraction(1)
        for v in range(self.nvars):
            val = self.assign[v]
            lo = self.lower[v]
            if lo is not None and lo.r < val.r and lo.d > val.d:
                delta = min(delta, (val.r - lo.r) / (lo.d - val.d))
            up = self.upper[v]
            if up is not None and val.r < up.r and val.d > up.d:
                delta = min(delta, (up.r - val.r) / (val.d - up.d))
        return delta / 2

    def model(self) -> list[Fraction]:
        """Concrete rational values for all variables (call after a
        successful :meth:`check`)."""
        delta = self.concrete_delta()
        return [self.assign[v].concretize(delta) for v in range(self.nvars)]
