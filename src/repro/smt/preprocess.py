"""Formula preprocessing: real if-then-else lifting and equality elimination.

The downstream pipeline (Tseitin + Simplex) handles boolean structure over
``<=``/``<`` atoms.  These passes rewrite the two remaining constructs:

* real-sorted ``Ite(c, a, b)`` inside arithmetic is replaced by a fresh
  variable ``v`` plus the side conditions ``c => v = a`` and ``!c => v = b``;
* equality atoms ``l == r`` become ``l <= r  and  r <= l`` (a polarity-safe
  rewrite, so it also covers negated equalities).
"""

from __future__ import annotations

from .terms import (
    And,
    FreshReal,
    Implies,
    Ite,
    Kind,
    Not,
    Or,
    Sort,
    Term,
    _rebuild,
)


def lift_real_ites(formula: Term) -> Term:
    """Replace every real-sorted ITE with a fresh variable and side constraints."""
    cache: dict[int, Term] = {}
    side: list[Term] = []

    def walk(t: Term) -> Term:
        hit = cache.get(id(t))
        if hit is not None:
            return hit
        if not t.args:
            cache[id(t)] = t
            return t
        new_args = tuple(walk(a) for a in t.args)
        if t.kind is Kind.ITE and t.sort is Sort.REAL:
            cond, then, other = new_args
            v = FreshReal("ite")
            side.append(Implies(cond, v.eq(then)))
            side.append(Implies(Not(cond), v.eq(other)))
            out = v
        elif all(n is o for n, o in zip(new_args, t.args)):
            out = t
        else:
            out = _rebuild(t, new_args)
        cache[id(t)] = out
        return out

    body = walk(formula)
    if not side:
        return body
    return And(body, *side)


def eliminate_eq(formula: Term) -> Term:
    """Rewrite every real equality atom into a conjunction of two ``<=`` atoms."""
    cache: dict[int, Term] = {}

    def walk(t: Term) -> Term:
        hit = cache.get(id(t))
        if hit is not None:
            return hit
        if t.kind is Kind.EQ:
            lhs, rhs = t.args
            out = And(lhs <= rhs, rhs <= lhs)
        elif not t.args:
            out = t
        else:
            new_args = tuple(walk(a) for a in t.args)
            if all(n is o for n, o in zip(new_args, t.args)):
                out = t
            else:
                out = _rebuild(t, new_args)
        cache[id(t)] = out
        return out

    return walk(formula)


def preprocess(formula: Term) -> Term:
    """Run all passes in order; the result contains only bool structure
    over ``<=``/``<`` atoms and boolean variables."""
    return eliminate_eq(lift_real_ites(formula))
