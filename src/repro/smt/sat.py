"""CDCL SAT solver with theory hooks (the boolean engine of DPLL(T)).

A reasonably complete conflict-driven clause-learning solver:

* two-watched-literal propagation,
* 1UIP conflict analysis with recursive clause minimization,
* VSIDS decision heuristic with phase saving,
* Luby restarts and activity-based learned-clause deletion,
* assumption literals (used by the incremental push/pop layer),
* a :class:`TheoryHook` interface through which the Simplex-based linear
  real arithmetic solver participates in the search.

Literals are non-zero ints in DIMACS convention: ``+v`` is the positive
literal of boolean variable ``v`` (1-based), ``-v`` its negation.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Optional, Sequence

from ..trust.proof import ProofError


class TheoryHook:
    """Interface the SAT core uses to talk to a theory solver.

    The SAT core guarantees the bracketing discipline: ``push_level`` is
    called once per decision level, ``pop_levels`` undoes the most recent
    levels, ``reset`` clears every asserted literal (the trail is replayed
    from scratch on the next solve), and ``assert_lit`` is called exactly
    once per registered theory literal between the surrounding push/pop.

    Conflicts are reported as a list of theory literals that are jointly
    inconsistent (all of which are currently asserted true).
    """

    def assert_lit(self, lit: int) -> Optional[list[int]]:
        raise NotImplementedError

    def check(self, final: bool) -> Optional[list[int]]:
        raise NotImplementedError

    def take_farkas(self):
        """Certificate of the most recent conflict (proof mode).

        Theory solvers that participate in proof production return a
        tuple of ``(literal, Fraction)`` pairs — the Farkas multipliers
        over the asserted inequalities — consumed once per conflict.
        The default (no certificate) makes proof mode fail loudly.
        """
        return None

    def push_level(self) -> None:
        raise NotImplementedError

    def pop_levels(self, count: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: list[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:
        return f"Clause({self.lits})"


def luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    while True:
        if (i + 1) & i == 0:  # i + 1 is a power of two -> i = 2^k - 1
            return (i + 1) >> 1
        i -= (1 << (i.bit_length() - 1)) - 1


class SatSolver:
    """CDCL solver; see module docstring."""

    def __init__(self, theory: Optional[TheoryHook] = None):
        self.theory = theory
        self.nvars = 0
        # indexed by var (1-based); index 0 unused
        self.values: list[int] = [0]  # 0 unassigned, +1 true, -1 false
        self.levels: list[int] = [0]
        self.reasons: list[Optional[Clause]] = [None]
        self.activity: list[float] = [0.0]
        self.saved_phase: list[int] = [1]
        self.is_theory: list[bool] = [False]
        self.watches: dict[int, list[Clause]] = {}
        self.clauses: list[Clause] = []
        self.learned: list[Clause] = []
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.cla_inc = 1.0
        self.order_heap: list[tuple[float, int]] = []
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.theory_checks = 0
        self.simplify_removed = 0
        self.learned_retained = 0
        self._theory_qhead = 0
        self._theory_dirty = False
        self._model: list[int] = []
        #: when set (a :class:`repro.trust.proof.ProofLog`), every clause
        #: addition/derivation/deletion is logged for independent checking
        self.proof = None

    # ------------------------------------------------------------------
    # Variable / clause management
    # ------------------------------------------------------------------

    def new_var(self, theory_atom: bool = False) -> int:
        self.nvars += 1
        v = self.nvars
        self.values.append(0)
        self.levels.append(0)
        self.reasons.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(-1)
        self.is_theory.append(theory_atom)
        self.watches.setdefault(v, [])
        self.watches.setdefault(-v, [])
        heapq.heappush(self.order_heap, (0.0, v))
        return v

    def value_lit(self, lit: int) -> int:
        v = self.values[abs(lit)]
        return v if lit > 0 else -v

    @property
    def decision_level(self) -> int:
        return len(self.trail_lim)

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause (at decision level 0). Returns False iff the
        clause system is now trivially unsatisfiable."""
        assert self.decision_level == 0, "clauses may only be added at level 0"
        if not self.ok:
            return False
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self.value_lit(lit)
            if val == 1:
                return True  # already satisfied at root
            if val == -1:
                continue  # falsified at root: drop
            seen.add(lit)
            out.append(lit)
        if self.proof is not None:
            # Ledger: the clause as given is an *input* (the checker must
            # justify it against the query); the root-shrunk form the
            # solver actually uses is a *derived* (RUP-checkable) clause.
            orig = tuple(lits)
            self.proof.input(orig)
            shrunk = tuple(out)
            if shrunk != orig:
                self.proof.derived(shrunk)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            self._uncheck_enqueue(out[0], None)
            if self.propagate() is not None:
                self.ok = False
                return False
            return True
        clause = Clause(out)
        self.clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: Clause) -> None:
        self.watches[-clause.lits[0]].append(clause)
        self.watches[-clause.lits[1]].append(clause)

    # ------------------------------------------------------------------
    # Assignment / propagation
    # ------------------------------------------------------------------

    def _uncheck_enqueue(self, lit: int, reason: Optional[Clause]) -> None:
        v = abs(lit)
        self.values[v] = 1 if lit > 0 else -1
        self.levels[v] = self.decision_level
        self.reasons[v] = reason
        self.trail.append(lit)
        if self.is_theory[v]:
            self._theory_dirty = True

    def propagate(self) -> Optional[Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            p = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            # clauses are registered under the negation of their watched
            # literals, so the clauses affected by p becoming true (i.e.
            # whose watch -p became false) live under key p
            watchlist = self.watches[p]
            i = 0
            j = 0
            n = len(watchlist)
            while i < n:
                clause = watchlist[i]
                i += 1
                lits = clause.lits
                if lits[0] == -p:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self.value_lit(first) == 1:
                    watchlist[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    if self.value_lit(lits[k]) != -1:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[-lits[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchlist[j] = clause
                j += 1
                if self.value_lit(first) == -1:
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.qhead = len(self.trail)
                    return clause
                self._uncheck_enqueue(first, clause)
            del watchlist[j:]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (1UIP)
    # ------------------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.nvars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self.order_heap, (-self.activity[v], v))

    def _bump_clause(self, c: Clause) -> None:
        c.activity += self.cla_inc
        if c.activity > 1e20:
            for cl in self.learned:
                cl.activity *= 1e-20
            self.cla_inc *= 1e-20

    def analyze(self, confl: Clause) -> tuple[list[int], int]:
        """1UIP analysis; returns (learnt clause, backjump level).

        Precondition: every literal of ``confl`` is false and at least one
        is at the current decision level.  ``learnt[0]`` is the asserting
        literal.
        """
        learnt: list[int] = [0]
        seen = [False] * (self.nvars + 1)
        counter = 0
        p = 0
        index = len(self.trail) - 1
        reason: Optional[Clause] = confl
        while True:
            assert reason is not None
            if reason.learned:
                self._bump_clause(reason)
            start = 1 if p != 0 else 0
            for lit in reason.lits[start:]:
                v = abs(lit)
                if not seen[v] and self.levels[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self.levels[v] >= self.decision_level:
                        counter += 1
                    else:
                        learnt.append(lit)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            index -= 1
            seen[abs(p)] = False
            counter -= 1
            if counter == 0:
                break
            reason = self.reasons[abs(p)]
        learnt[0] = -p

        # clause minimization: drop lits implied by the rest
        keep = [learnt[0]]
        marked = {abs(l) for l in learnt}
        for lit in learnt[1:]:
            if not self._redundant(lit, marked):
                keep.append(lit)
        learnt = keep

        if len(learnt) == 1:
            bt_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self.levels[abs(learnt[i])] > self.levels[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self.levels[abs(learnt[1])]
        return learnt, bt_level

    def _redundant(self, lit: int, marked: set[int], depth: int = 0) -> bool:
        reason = self.reasons[abs(lit)]
        if reason is None or depth > 24:
            return False
        for q in reason.lits:
            v = abs(q)
            if v == abs(lit) or self.levels[v] == 0 or v in marked:
                continue
            if self.reasons[v] is None:
                return False
            if not self._redundant(q, marked, depth + 1):
                return False
        return True

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def cancel_until(self, level: int) -> None:
        if self.decision_level <= level:
            return
        pop_count = self.decision_level - level
        bound = self.trail_lim[level]
        for i in range(len(self.trail) - 1, bound - 1, -1):
            lit = self.trail[i]
            v = abs(lit)
            self.saved_phase[v] = 1 if lit > 0 else -1
            self.values[v] = 0
            self.reasons[v] = None
            heapq.heappush(self.order_heap, (-self.activity[v], v))
        del self.trail[bound:]
        del self.trail_lim[level:]
        self.qhead = min(self.qhead, len(self.trail))
        self._theory_qhead = min(self._theory_qhead, len(self.trail))
        if self.theory is not None:
            self.theory.pop_levels(pop_count)

    # ------------------------------------------------------------------
    # Theory integration
    # ------------------------------------------------------------------

    def _theory_sync(self, final: bool) -> Optional[Clause]:
        """Push newly assigned theory literals to the theory and check.

        Returns a conflict clause (falsified under the current assignment)
        or None.
        """
        if self.theory is None:
            return None
        if not self._theory_dirty and not final and self._theory_qhead == len(self.trail):
            return None
        conflict_lits = None
        while self._theory_qhead < len(self.trail):
            lit = self.trail[self._theory_qhead]
            self._theory_qhead += 1
            if self.is_theory[abs(lit)]:
                conflict_lits = self.theory.assert_lit(lit)
                if conflict_lits is not None:
                    break
        if conflict_lits is None:
            self._theory_dirty = False
            self.theory_checks += 1
            conflict_lits = self.theory.check(final)
        if conflict_lits is None:
            return None
        clause = Clause([-l for l in conflict_lits], learned=True)
        if self.proof is not None:
            farkas = self.theory.take_farkas()
            if not farkas:
                raise ProofError(
                    "theory conflict without a Farkas certificate; the "
                    "theory solver cannot participate in proof mode"
                )
            self.proof.theory(tuple(clause.lits), tuple(farkas))
        return clause

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        while self.order_heap:
            _, v = heapq.heappop(self.order_heap)
            if self.values[v] == 0:
                return v
        return 0

    def _handle_conflict(self, confl: Clause) -> bool:
        """Learn from a conflict and backjump. Returns False iff UNSAT.

        Handles theory conflict clauses whose literals may all live below
        the current decision level by first backtracking to the highest
        level among them.
        """
        self.conflicts += 1
        max_level = 0
        for lit in confl.lits:
            lvl = self.levels[abs(lit)]
            if lvl > max_level:
                max_level = lvl
        if max_level == 0:
            self.ok = False
            return False
        if max_level < self.decision_level:
            self.cancel_until(max_level)
        learnt, bt_level = self.analyze(confl)
        if self.proof is not None:
            self.proof.learn(tuple(learnt))
        self.cancel_until(bt_level)
        if len(learnt) == 1:
            self._uncheck_enqueue(learnt[0], None)
        else:
            clause = Clause(learnt, learned=True)
            self.learned.append(clause)
            self._bump_clause(clause)
            self._attach(clause)
            self._uncheck_enqueue(learnt[0], clause)
        self.var_inc /= 0.95
        self.cla_inc /= 0.999
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        on_progress: Optional[Callable[[int], None]] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Search for a model. Returns True (SAT), False (UNSAT) or None
        if ``max_conflicts`` or the wall-clock ``deadline`` (a
        ``time.perf_counter()`` timestamp, checked at each conflict) was
        exhausted."""
        if not self.ok:
            return False
        # Replay the root-level trail into a freshly reset theory solver.
        if self.theory is not None:
            self.theory.reset()
        self._theory_qhead = 0
        self._theory_dirty = True
        restart_idx = 1
        conflicts_at_restart = self.conflicts
        budget = luby(restart_idx) * 128
        start_conflicts = self.conflicts
        result: Optional[bool] = None
        while result is None:
            confl = self.propagate()
            if confl is None:
                confl = self._theory_sync(final=False)
            if confl is not None:
                if not self._handle_conflict(confl):
                    result = False
                    break
                if max_conflicts is not None and self.conflicts - start_conflicts >= max_conflicts:
                    self.cancel_until(0)
                    return None
                if deadline is not None and time.perf_counter() >= deadline:
                    self.cancel_until(0)
                    return None
                if on_progress is not None:
                    on_progress(self.conflicts)
                if self.conflicts - conflicts_at_restart >= budget:
                    restart_idx += 1
                    conflicts_at_restart = self.conflicts
                    budget = luby(restart_idx) * 128
                    self.restarts += 1
                    self.cancel_until(0)
                if len(self.learned) > 4000 + 8 * len(self.clauses):
                    self._reduce_db()
                continue

            # no conflict: establish assumptions, then decide
            if self.decision_level < len(assumptions):
                lit = assumptions[self.decision_level]
                val = self.value_lit(lit)
                if val == -1:
                    result = False
                    break
                self.trail_lim.append(len(self.trail))
                if self.theory is not None:
                    self.theory.push_level()
                if val == 0:
                    self._uncheck_enqueue(lit, None)
                continue

            v = self._pick_branch_var()
            if v == 0:
                confl = self._theory_sync(final=True)
                if confl is not None:
                    if not self._handle_conflict(confl):
                        result = False
                        break
                    continue
                result = True
                break
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            if self.theory is not None:
                self.theory.push_level()
            phase = self.saved_phase[v]
            self._uncheck_enqueue(v * phase, None)

        if result is True:
            self._model = [self.values[v] if v else 0 for v in range(self.nvars + 1)]
        self.cancel_until(0)
        return result

    def simplify(self) -> int:
        """Drop clauses satisfied at the root level; keep the rest.

        The incremental push/pop layer disables a popped frame's guard by
        asserting its negation as a root-level unit, which permanently
        satisfies every clause guarded by that frame.  Those clauses (and
        any learned clause that came to mention the dead guard) are dead
        weight on the watchlists; this removes them.  Learned clauses
        *not* satisfied at the root are retained verbatim — they were
        derived from guarded clauses plus theory lemmas, both of which
        remain part of the clause system, so they stay logically implied
        after any number of pops (see DESIGN.md, "Clause retention across
        pops").

        Must be called at decision level 0 (always true between solves).
        Returns the number of clauses removed.
        """
        assert self.decision_level == 0, "simplify only at the root level"
        if not self.ok:
            return 0

        def root_satisfied(clause: Clause) -> bool:
            for lit in clause.lits:
                if self.value_lit(lit) == 1 and self.levels[abs(lit)] == 0:
                    return True
            return False

        locked = {
            id(self.reasons[abs(l)])
            for l in self.trail
            if self.reasons[abs(l)] is not None
        }
        removed: set[int] = set()
        for pool in (self.clauses, self.learned):
            kept: list[Clause] = []
            for c in pool:
                if id(c) not in locked and root_satisfied(c):
                    removed.add(id(c))
                    if self.proof is not None:
                        self.proof.delete(tuple(c.lits))
                else:
                    kept.append(c)
            pool[:] = kept
        if removed:
            for wl in self.watches.values():
                wl[:] = [c for c in wl if id(c) not in removed]
        self.simplify_removed += len(removed)
        self.learned_retained = len(self.learned)
        return len(removed)

    def _reduce_db(self) -> None:
        self.learned.sort(key=lambda c: c.activity)
        half = len(self.learned) // 2
        locked = {id(self.reasons[abs(l)]) for l in self.trail if self.reasons[abs(l)] is not None}
        keep: list[Clause] = []
        removed: set[int] = set()
        for i, c in enumerate(self.learned):
            if i < half and len(c.lits) > 2 and id(c) not in locked:
                removed.add(id(c))
                if self.proof is not None:
                    self.proof.delete(tuple(c.lits))
            else:
                keep.append(c)
        if not removed:
            return
        self.learned = keep
        for wl in self.watches.values():
            wl[:] = [c for c in wl if id(c) not in removed]

    def model_value(self, var: int) -> bool:
        """Value of a variable in the last SAT model (True/False)."""
        return self._model[var] == 1
