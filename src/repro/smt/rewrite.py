"""Pure term-rewriting passes for the staged compile pipeline.

Every pass here is a function from terms to terms with no solver state:

* :func:`simplify` — bottom-up constant folding plus the boolean
  simplifications the builders don't do on their own: duplicate and
  complementary-literal elimination in ``And``/``Or``, absorption
  (``a AND (a OR b) -> a``), reflexive atoms (``x <= x -> True``).
* :func:`lift_real_ites` — replace real-sorted ``Ite(c, a, b)`` inside
  arithmetic with an auxiliary variable plus the side conditions
  ``c => v = a`` and ``not c => v = b``.  Unlike the legacy
  :mod:`repro.smt.preprocess` pass, the auxiliary variable is named
  *deterministically* from the content of the ITE term, so structurally
  identical queries compile to structurally identical terms in every
  process — a requirement for post-simplification cache keys
  (:mod:`repro.engine.cache`) to survive worker and run boundaries.
* :func:`canonicalize_atoms` — rewrite every ``<=``/``<`` atom into the
  shared :mod:`repro.smt.linarith` normal form, so all spellings of one
  half-space (``x <= y``, ``0 <= y - x``, ``2x - 2y <= 0``) become one
  interned atom term and hence one SAT/Simplex variable.

The driver that sequences these passes (and the variable-eliminating
ones that need cross-conjunct context) is :mod:`repro.smt.compile`.
"""

from __future__ import annotations

import hashlib

from .errors import NonLinearError
from .linarith import LinAtom, normalize_atom
from .terms import (
    FALSE,
    TRUE,
    Add,
    BoolVal,
    Implies,
    Kind,
    Mul,
    Not,
    Real,
    RealVal,
    Sort,
    Term,
    _rebuild,
    canonical_key,
)

__all__ = [
    "atom_term",
    "bottom_up",
    "canonicalize_atoms",
    "lift_real_ites",
    "simplify",
]


def bottom_up(term: Term, fn) -> Term:
    """Rebuild ``term`` bottom-up, applying ``fn(node, new_args)`` at
    every node (children first).  ``fn`` receives the original node and
    its already-rewritten argument tuple and returns the replacement
    term.  Iterative, so arbitrarily deep formulas are safe."""
    cache: dict[int, Term] = {}
    stack: list[tuple[Term, bool]] = [(term, False)]
    while stack:
        t, ready = stack.pop()
        if id(t) in cache:
            continue
        if not ready and t.args:
            stack.append((t, True))
            for a in t.args:
                if id(a) not in cache:
                    stack.append((a, False))
            continue
        new_args = tuple(cache[id(a)] for a in t.args)
        cache[id(t)] = fn(t, new_args)
    return cache[id(term)]


def _same(args: tuple, orig: tuple) -> bool:
    return all(n is o for n, o in zip(args, orig))


# -- simplify ----------------------------------------------------------------


def _simplify_nary(t: Term) -> Term:
    """Duplicate, complementary-literal, and absorption cleanup for an
    already-flattened ``And``/``Or`` node."""
    k = t.kind
    seen: set[int] = set()
    kept: list[Term] = []
    for a in t.args:
        if id(a) in seen:
            continue
        seen.add(id(a))
        kept.append(a)
    # complementary pair: And(a, not a) is False; Or dual is True
    negated = {id(a.args[0]) for a in kept if a.kind is Kind.NOT}
    if any(id(a) in negated for a in kept):
        return FALSE if k is Kind.AND else TRUE
    # absorption: a AND (a OR b) -> a;  a OR (a AND b) -> a
    inner = Kind.OR if k is Kind.AND else Kind.AND
    ids = {id(a) for a in kept}
    kept = [
        a
        for a in kept
        if not (a.kind is inner and any(id(d) in ids for d in a.args))
    ]
    if len(kept) == len(t.args):
        return t
    if len(kept) == 1:
        return kept[0]
    return Term(k, Sort.BOOL, tuple(kept))


def _post_rules(t: Term) -> Term:
    """Local rules applied to every rebuilt node."""
    k = t.kind
    if k is Kind.AND or k is Kind.OR:
        return _simplify_nary(t)
    if t.args and t.args[0] is t.args[-1] and len(t.args) == 2:
        # reflexive binary nodes over identical (interned) operands
        if k is Kind.IMPLIES or k is Kind.LE or k is Kind.EQ:
            return TRUE
        if k is Kind.LT:
            return FALSE
    return t


def simplify(term: Term) -> Term:
    """Bottom-up fold: rebuilding through the smart constructors applies
    constant folding, flattening, and double-negation elimination;
    :func:`_post_rules` adds dedup/complement/absorption on top."""

    def fn(t: Term, args: tuple) -> Term:
        if not t.args:
            return t
        out = t if _same(args, t.args) else _rebuild(t, args)
        return _post_rules(out)

    return bottom_up(term, fn)


# -- real ITE lifting --------------------------------------------------------


def aux_ite_name(term: Term) -> str:
    """Deterministic auxiliary-variable name for a real-sorted ITE term.

    Derived from the content-addressed :func:`canonical_key`, so the same
    ITE (after inner rewriting) gets the same variable in every process:
    compiled forms — and therefore post-simplification cache keys — are
    reproducible across portfolio workers and on-disk cache sessions.
    Identical ITEs in one query share one variable and one pair of side
    conditions, which is exactly the sharing we want.
    """
    digest = hashlib.sha256(canonical_key(term).encode("utf-8")).hexdigest()
    return f"ite@{digest[:16]}"


def lift_real_ites(formula: Term, side: list, emitted: set) -> Term:
    """Replace real-sorted ITEs with deterministic auxiliary variables.

    Appends the side conditions to ``side``; ``emitted`` (a set of aux
    names, shared across the conjuncts of one compile) prevents duplicate
    side conditions when the same ITE occurs in several conjuncts."""

    def fn(t: Term, args: tuple) -> Term:
        if not t.args:
            return t
        out = t if _same(args, t.args) else _rebuild(t, args)
        if out.kind is Kind.ITE and out.sort is Sort.REAL:
            cond, then, other = out.args
            name = aux_ite_name(out)
            v = Real(name)
            if name not in emitted:
                emitted.add(name)
                side.append(Implies(cond, v.eq(then)))
                side.append(Implies(Not(cond), v.eq(other)))
            return v
        return out

    return bottom_up(formula, fn)


# -- atom canonicalization ---------------------------------------------------


def atom_term(atom: LinAtom) -> Term:
    """The canonical term spelling of a :class:`LinAtom`.

    Upper atoms become ``expr <= bound`` / ``expr < bound`` with the
    variables in name order and the leading coefficient ``+1`` (the
    normal form :func:`normalize_atom` produces); lower atoms become the
    negation of the complementary upper atom, so each half-space has
    exactly one positive spelling and the encoder maps both polarities
    onto one theory variable.
    """
    lhs = Add(*[Mul(c, v) for v, c in atom.expr])
    bound = RealVal(atom.bound)
    if atom.upper:
        return (lhs < bound) if atom.strict else (lhs <= bound)
    # expr >= b  ==  not (expr < b);   expr > b  ==  not (expr <= b)
    return Not(lhs <= bound) if atom.strict else Not(lhs < bound)


def canonicalize_atoms(formula: Term) -> Term:
    """Rewrite every ``<=``/``<`` atom into linarith normal form (ground
    atoms fold to constants).  Equalities must already be eliminated
    (:func:`repro.smt.preprocess.eliminate_eq`)."""

    def fn(t: Term, args: tuple) -> Term:
        if not t.args:
            return t
        out = t if _same(args, t.args) else _rebuild(t, args)
        if out.kind is Kind.LE or out.kind is Kind.LT:
            try:
                la = normalize_atom(out)
            except NonLinearError:
                return out  # leave for the encoder to reject
            if isinstance(la, bool):
                return BoolVal(la)
            return atom_term(la)
        return out

    return bottom_up(formula, fn)
