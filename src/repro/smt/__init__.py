"""A from-scratch SMT solver for quantifier-free linear real arithmetic.

This package replaces Z3 in the CCmatic reproduction (no solver wheel is
available offline).  It provides:

* a hash-consed term language (:mod:`repro.smt.terms`),
* a staged compile pipeline — simplify → normalize → CNF — shared by
  every consumer (:mod:`repro.smt.compile`, :mod:`repro.smt.rewrite`),
* Tseitin CNF conversion (:mod:`repro.smt.cnf`),
* a CDCL SAT core with theory hooks (:mod:`repro.smt.sat`),
* an exact-arithmetic incremental Simplex for LRA
  (:mod:`repro.smt.simplex`, :mod:`repro.smt.theory`),
* an incremental z3-flavoured frontend (:mod:`repro.smt.solver`),
* binary-search optimization (:mod:`repro.smt.optimize`) and MaxSAT
  (:mod:`repro.smt.maxsat`).
"""

from .encodings import (
    at_most_one,
    bool_indicator,
    encode_abs,
    encode_max,
    encode_min,
    exactly_one,
    select_product,
    selected_constant,
)
from .compile import (
    CompiledQuery,
    CompileOptions,
    CompileStats,
    compile_query,
    pipeline_disabled,
    pipeline_enabled,
    set_pipeline_enabled,
)
from .errors import (
    BudgetExceededError,
    NonLinearError,
    SmtError,
    SortError,
    UnknownResultError,
)
from .maxsat import MaxSatResult, MaxSatSolver
from .optimize import OptimizeResult, maximize, minimize
from .session import SessionStats, SolverSession
from .solver import CheckOptions, Model, Result, Solver, check_formulas, sat, unknown, unsat
from .terms import (
    FALSE,
    TRUE,
    Add,
    And,
    Bool,
    BoolVal,
    Eq,
    FreshBool,
    FreshReal,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Real,
    RealVal,
    Sum,
    Term,
    canonical_hash,
    canonical_key,
    clear_interned,
    evaluate,
    intern_stats,
    interned_count,
    interned_scope,
    substitute,
)

__all__ = [
    "Add", "And", "Bool", "BoolVal", "BudgetExceededError", "CheckOptions",
    "CompileOptions", "CompileStats", "CompiledQuery",
    "Eq", "FALSE", "FreshBool", "FreshReal", "Iff", "Implies", "Ite",
    "MaxSatResult", "MaxSatSolver", "Model", "NonLinearError", "Not",
    "OptimizeResult", "Or", "Real", "RealVal", "Result", "SessionStats",
    "SmtError", "Solver", "SolverSession", "SortError", "Sum", "TRUE",
    "Term", "UnknownResultError", "at_most_one", "bool_indicator",
    "canonical_hash", "canonical_key", "check_formulas", "clear_interned",
    "compile_query", "encode_abs", "encode_max", "encode_min", "evaluate",
    "exactly_one", "intern_stats", "interned_count", "interned_scope",
    "maximize", "minimize", "pipeline_disabled", "pipeline_enabled", "sat",
    "select_product", "selected_constant", "set_pipeline_enabled",
    "substitute", "unknown", "unsat",
]
