"""SMT-LIB v2 interchange for the QF-LRA fragment.

Lets users dump any query this library builds (e.g. a CCAC verification
instance) to the standard format — so it can be cross-checked against
Z3/CVC5 where those are available — and load simple QF-LRA benchmarks
back in.  Supported surface:

* sorts ``Bool`` and ``Real``;
* ``declare-const`` / ``declare-fun`` with zero arguments;
* ``assert`` over ``and or not => ite + - * / <= < >= > =``, rational and
  decimal literals, ``true``/``false``;
* ``(check-sat)`` / ``(get-model)`` markers (ignored on parse).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from .errors import SmtError, SortError
from .terms import (
    And,
    Bool,
    BoolVal,
    Eq,
    Implies,
    Ite,
    Kind,
    Not,
    Or,
    Real,
    RealVal,
    Sort,
    Term,
)


class SmtLibError(SmtError):
    """Malformed SMT-LIB input."""


# ---------------------------------------------------------------------------
# Printing
# ---------------------------------------------------------------------------


def _rational_to_smtlib(value: Fraction) -> str:
    if value < 0:
        return f"(- {_rational_to_smtlib(-value)})"
    if value.denominator == 1:
        return f"{value.numerator}.0"
    return f"(/ {value.numerator}.0 {value.denominator}.0)"


def term_to_smtlib(term: Term) -> str:
    """Render one term as an SMT-LIB s-expression."""
    k = term.kind
    if k is Kind.CONST:
        if term.sort is Sort.BOOL:
            return "true" if term.value else "false"
        return _rational_to_smtlib(term.value)
    if k is Kind.VAR:
        return term.name
    if k is Kind.NOT:
        return f"(not {term_to_smtlib(term.args[0])})"
    if k is Kind.AND:
        return "(and " + " ".join(term_to_smtlib(a) for a in term.args) + ")"
    if k is Kind.OR:
        return "(or " + " ".join(term_to_smtlib(a) for a in term.args) + ")"
    if k is Kind.IMPLIES:
        return f"(=> {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
    if k is Kind.IFF:
        return f"(= {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
    if k is Kind.ITE:
        a, b, c = (term_to_smtlib(x) for x in term.args)
        return f"(ite {a} {b} {c})"
    if k is Kind.ADD:
        return "(+ " + " ".join(term_to_smtlib(a) for a in term.args) + ")"
    if k is Kind.NEG:
        return f"(- {term_to_smtlib(term.args[0])})"
    if k is Kind.SCALE:
        if term.value is None:
            return f"(* {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
        return f"(* {_rational_to_smtlib(term.value)} {term_to_smtlib(term.args[0])})"
    if k is Kind.LE:
        return f"(<= {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
    if k is Kind.LT:
        return f"(< {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
    if k is Kind.EQ:
        return f"(= {term_to_smtlib(term.args[0])} {term_to_smtlib(term.args[1])})"
    raise SortError(f"cannot print kind {k}")


def to_smtlib(assertions: list[Term], logic: str = "QF_LRA") -> str:
    """A complete SMT-LIB script for a list of assertions."""
    variables: dict[str, Term] = {}
    for formula in assertions:
        for node in formula.iter_dag():
            if node.is_var():
                variables[node.name] = node
    lines = [f"(set-logic {logic})"]
    for name in sorted(variables):
        sort = "Bool" if variables[name].sort is Sort.BOOL else "Real"
        lines.append(f"(declare-const {name} {sort})")
    for formula in assertions:
        lines.append(f"(assert {term_to_smtlib(formula)})")
    lines.append("(check-sat)")
    lines.append("(get-model)")
    return "\n".join(lines) + "\n"


def solver_to_smtlib(solver) -> str:
    """Dump a :class:`repro.smt.Solver`'s active assertions."""
    return to_smtlib(solver.assertions())


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _tokenize(text: str) -> Iterator[str]:
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in "()":
            yield c
            i += 1
        elif c.isspace():
            i += 1
        elif c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "|":
            j = text.index("|", i + 1)
            yield text[i : j + 1]
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "();":
                j += 1
            yield text[i:j]
            i = j


def _parse_sexprs(tokens: list[str]):
    """Token list -> nested lists/atoms."""
    pos = 0

    def parse_one():
        nonlocal pos
        if pos >= len(tokens):
            raise SmtLibError("unexpected end of input")
        tok = tokens[pos]
        pos += 1
        if tok == "(":
            out = []
            while pos < len(tokens) and tokens[pos] != ")":
                out.append(parse_one())
            if pos >= len(tokens):
                raise SmtLibError("unbalanced parentheses")
            pos += 1  # consume ')'
            return out
        if tok == ")":
            raise SmtLibError("unexpected ')'")
        return tok

    exprs = []
    while pos < len(tokens):
        exprs.append(parse_one())
    return exprs


def _atom_value(tok: str) -> Fraction | None:
    try:
        if "." in tok:
            return Fraction(tok)
        return Fraction(int(tok))
    except (ValueError, ZeroDivisionError):
        return None


class SmtLibScript:
    """Result of parsing: declarations + assertions."""

    def __init__(self):
        self.logic: str | None = None
        self.variables: dict[str, Term] = {}
        self.assertions: list[Term] = []

    def check(self):
        """Solve the parsed script with our solver; returns a Result."""
        from .solver import Solver

        solver = Solver()
        solver.add(*self.assertions)
        return solver.check()


def parse_smtlib(text: str) -> SmtLibScript:
    """Parse an SMT-LIB script (the supported fragment)."""
    script = SmtLibScript()
    for expr in _parse_sexprs(list(_tokenize(text))):
        if not isinstance(expr, list) or not expr:
            raise SmtLibError(f"top-level form expected, got {expr!r}")
        head = expr[0]
        if head == "set-logic":
            script.logic = expr[1]
        elif head in ("set-info", "set-option", "check-sat", "get-model", "exit"):
            continue
        elif head == "declare-const":
            _, name, sort = expr
            script.variables[name] = _declare(name, sort)
        elif head == "declare-fun":
            _, name, params, sort = expr
            if params:
                raise SmtLibError("only zero-arity functions supported")
            script.variables[name] = _declare(name, sort)
        elif head == "assert":
            script.assertions.append(_build(expr[1], script.variables))
        else:
            raise SmtLibError(f"unsupported command {head!r}")
    return script


def _declare(name: str, sort: str) -> Term:
    if sort == "Bool":
        return Bool(name)
    if sort == "Real":
        return Real(name)
    raise SmtLibError(f"unsupported sort {sort!r}")


def _build(expr, variables: dict[str, Term]) -> Term:
    if isinstance(expr, str):
        if expr == "true":
            return BoolVal(True)
        if expr == "false":
            return BoolVal(False)
        value = _atom_value(expr)
        if value is not None:
            return RealVal(value)
        if expr in variables:
            return variables[expr]
        raise SmtLibError(f"undeclared symbol {expr!r}")
    head, *args = expr
    if head == "-" and len(args) == 1:
        return -_build(args[0], variables)
    built = [_build(a, variables) for a in args]
    if head == "and":
        return And(*built)
    if head == "or":
        return Or(*built)
    if head == "not":
        return Not(built[0])
    if head == "=>":
        out = built[-1]
        for a in reversed(built[:-1]):
            out = Implies(a, out)
        return out
    if head == "ite":
        return Ite(built[0], built[1], built[2])
    if head == "+":
        out = built[0]
        for b in built[1:]:
            out = out + b
        return out
    if head == "-":
        out = built[0]
        for b in built[1:]:
            out = out - b
        return out
    if head == "*":
        out = built[0]
        for b in built[1:]:
            out = out * b
        return out
    if head == "/":
        out = built[0]
        for b in built[1:]:
            if not b.is_const():
                raise SmtLibError("division only by constants in QF_LRA fragment")
            out = out / b.value
        return out
    if head == "<=":
        return _chain(built, lambda a, b: a <= b)
    if head == "<":
        return _chain(built, lambda a, b: a < b)
    if head == ">=":
        return _chain(built, lambda a, b: a >= b)
    if head == ">":
        return _chain(built, lambda a, b: a > b)
    if head == "=":
        return _chain(built, Eq)
    raise SmtLibError(f"unsupported operator {head!r}")


def _chain(args: list[Term], op) -> Term:
    parts = [op(a, b) for a, b in zip(args, args[1:])]
    return And(*parts)
