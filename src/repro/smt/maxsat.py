"""MaxSAT on top of the DPLL(T) stack.

The paper (§4.1) proposes MaxSAT to define the *weakest sufficient
assumption* when synthesizing environment assumptions.  We implement
weighted partial MaxSAT by the indicator-sum method: each soft constraint
gets a relaxation boolean coupled to a 0/1 real indicator, and we binary
search for the smallest achievable total relaxation weight using the
underlying LRA engine for the cardinality arithmetic — no dedicated
cardinality encodings needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from .encodings import bool_indicator
from .solver import CheckOptions, Model, Solver, _require_options, sat
from .terms import FreshBool, FreshReal, Or, RealVal, Sum, Term


@dataclass
class MaxSatResult:
    """Outcome of a MaxSAT call."""

    feasible: bool  # hard constraints satisfiable at all
    cost: Optional[Fraction]  # total weight of violated soft constraints
    model: Optional[Model]
    satisfied: list[bool]  # per-soft-constraint satisfaction flags

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "MaxSatResult is not a boolean; test .feasible explicitly"
        )


class MaxSatSolver:
    """Weighted partial MaxSAT: minimize the weight of violated softs."""

    def __init__(self):
        self.solver = Solver()
        self._softs: list[tuple[Term, Fraction, Term]] = []  # (formula, weight, relax)

    def add_hard(self, *formulas: Term) -> None:
        """Constraints that must hold."""
        self.solver.add(*formulas)

    def add_soft(self, formula: Term, weight: Fraction | int = 1) -> None:
        """A constraint we would like to hold; violating it costs ``weight``."""
        relax = FreshBool("relax")
        indicator = FreshReal("relax_ind")
        self.solver.add(Or(formula, relax))
        self.solver.add(bool_indicator(relax, indicator))
        self._softs.append((formula, Fraction(weight), indicator))

    def solve(self, options: Optional[CheckOptions] = None) -> MaxSatResult:
        """Minimize total relaxation cost by binary search on the cost sum.

        Per-probe budgets go through ``options``
        (:class:`~repro.smt.solver.CheckOptions`).
        """
        opts = _require_options(options, "MaxSatSolver.solve")
        if not self._softs:
            outcome = self.solver.check(opts)
            if outcome is not sat:
                return MaxSatResult(False, None, None, [])
            return MaxSatResult(True, Fraction(0), self.solver.model(), [])

        cost_term = Sum(
            RealVal(w) * ind for (_f, w, ind) in self._softs
        )
        outcome = self.solver.check(opts)
        if outcome is not sat:
            return MaxSatResult(False, None, None, [])
        best_model = self.solver.model()
        best_cost = best_model.value(cost_term)

        lo = Fraction(0)
        hi = best_cost
        while lo < hi:
            mid = (lo + hi) / 2
            self.solver.push()
            self.solver.add(cost_term <= mid)
            outcome = self.solver.check(opts)
            if outcome is sat:
                model = self.solver.model()
                achieved = model.value(cost_term)
                best_model, best_cost = model, achieved
                hi = achieved
            else:
                # costs live on a discrete lattice; tighten lo past mid
                lo = _next_weight_at_least(self._weights(), mid)
            self.solver.pop()
        flags = [bool(best_model.value(f)) for (f, _w, _i) in self._softs]
        return MaxSatResult(True, best_cost, best_model, flags)

    def _weights(self) -> Sequence[Fraction]:
        return [w for (_f, w, _i) in self._softs]


def _next_weight_at_least(weights: Sequence[Fraction], threshold: Fraction) -> Fraction:
    """Smallest subset-sum of ``weights`` strictly greater than ``threshold``.

    Exact when the number of softs is small (<= 20); otherwise falls back
    to ``threshold + min_weight`` which keeps the search sound (may take a
    few extra iterations, never skips the optimum).
    """
    if len(weights) <= 20:
        sums = {Fraction(0)}
        for w in weights:
            sums |= {s + w for s in sums}
        candidates = [s for s in sums if s > threshold]
        if candidates:
            return min(candidates)
        return threshold + (min(weights) if weights else Fraction(1))
    return threshold + min(weights)
