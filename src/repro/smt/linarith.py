"""Normalization of real-sorted terms into linear expressions and atoms.

A :class:`LinExpr` is a mapping from real variables to rational coefficients
plus a rational constant.  Atoms (``<=``, ``<``) are normalized into
:class:`LinAtom` — a *canonically scaled* coefficient vector together with a
bound, a direction (upper vs lower) and a strictness flag.  Canonical scaling
makes structurally different but equivalent atoms (``2x + 2y <= 6`` and
``x + y <= 3``) share the same slack variable inside the Simplex core.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .errors import NonLinearError, SortError
from .terms import Kind, Sort, Term


class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + const`` over Fractions."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: dict[Term, Fraction] | None = None, const: Fraction = Fraction(0)):
        self.coeffs: dict[Term, Fraction] = coeffs or {}
        self.const = Fraction(const)

    @classmethod
    def from_term(cls, term: Term) -> "LinExpr":
        """Normalize a real-sorted term; raises on non-linear products."""
        if term.sort is not Sort.REAL:
            raise SortError(f"expected real term, got {term!r}")
        out = cls()
        out._accumulate(term, Fraction(1))
        out._drop_zeros()
        return out

    def _accumulate(self, term: Term, scale: Fraction) -> None:
        k = term.kind
        if k is Kind.CONST:
            self.const += scale * term.value
        elif k is Kind.VAR:
            self.coeffs[term] = self.coeffs.get(term, Fraction(0)) + scale
        elif k is Kind.ADD:
            for a in term.args:
                self._accumulate(a, scale)
        elif k is Kind.NEG:
            self._accumulate(term.args[0], -scale)
        elif k is Kind.SCALE:
            if term.value is None:
                raise NonLinearError(f"non-linear product: {term!r}")
            self._accumulate(term.args[0], scale * term.value)
        else:
            raise SortError(f"not an arithmetic term: {term!r}")

    def _drop_zeros(self) -> None:
        self.coeffs = {v: c for v, c in self.coeffs.items() if c != 0}

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, env) -> Fraction:
        """Evaluate under a variable assignment (vars -> Fraction)."""
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * Fraction(env[var])
        return total

    def __repr__(self) -> str:
        parts = [f"{c}*{v.name}" for v, c in sorted(self.coeffs.items(), key=lambda p: p[0].name)]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class LinAtom:
    """A canonical linear atom: ``expr (<=|<|>=|>) bound``.

    ``expr`` is a tuple of ``(var, coeff)`` pairs sorted by variable name with
    the leading coefficient normalized to ``+1`` and no constant part.
    ``upper=True`` reads "expr is at most bound"; ``strict=True`` makes the
    comparison strict.
    """

    expr: tuple[tuple[Term, Fraction], ...]
    bound: Fraction
    upper: bool
    strict: bool

    def negate(self) -> "LinAtom":
        """Logical negation: ``not (e <= b)`` is ``e > b`` etc."""
        return LinAtom(self.expr, self.bound, not self.upper, not self.strict)

    def holds(self, env) -> bool:
        """Evaluate the atom under an assignment (vars -> Fraction)."""
        total = Fraction(0)
        for var, coeff in self.expr:
            total += coeff * Fraction(env[var])
        if self.upper:
            return total < self.bound if self.strict else total <= self.bound
        return total > self.bound if self.strict else total >= self.bound


def normalize_atom(term: Term) -> LinAtom | bool:
    """Normalize a ``<=``/``<`` atom term into a :class:`LinAtom`.

    Returns a plain bool when the atom is ground (no variables).  ``==``
    atoms must be eliminated beforehand (see :mod:`repro.smt.preprocess`).
    """
    if term.kind not in (Kind.LE, Kind.LT):
        raise SortError(f"not a normalizable atom: {term!r}")
    lhs = LinExpr.from_term(term.args[0])
    rhs = LinExpr.from_term(term.args[1])
    # diff <= / < 0  where diff = lhs - rhs
    coeffs = dict(lhs.coeffs)
    for var, c in rhs.coeffs.items():
        coeffs[var] = coeffs.get(var, Fraction(0)) - c
    coeffs = {v: c for v, c in coeffs.items() if c != 0}
    bound = rhs.const - lhs.const
    strict = term.kind is Kind.LT
    if not coeffs:
        return (Fraction(0) < bound) if strict else (Fraction(0) <= bound)
    ordered = sorted(coeffs.items(), key=lambda p: p[0].name)
    lead = ordered[0][1]
    scaled = tuple((v, c / lead) for v, c in ordered)
    bound = bound / lead
    upper = lead > 0
    return LinAtom(scaled, bound, upper, strict)
