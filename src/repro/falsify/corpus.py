"""Regression corpus: every falsified verdict becomes a committed test.

When the falsifier finds a violating trace, the schedule is minimized by
greedy shrinking (:func:`minimize_schedule`) and written as a JSON
:class:`CorpusCase` into ``tests/corpus/cases/``.  The pytest collector
in ``tests/corpus/test_replay.py`` globs that directory and replays each
case forever: the CCA is rebuilt from its spec, the schedule re-run, and
the recorded verdict (violated flag and exact margin) asserted with
``==`` — Fractions are round-tripped as strings, so replay is bit-exact.

A case carries its full provenance — the search seed/generation/index
that found it and the reason it was recorded (``model-gap`` vs
``soundness``) — so a failing replay points straight back at the hunt
that produced it.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, fields as dataclass_fields
from fractions import Fraction
from pathlib import Path
from typing import Callable, Optional

from .schedule import SCHEMA_VERSION, Segment, TraceSchedule

__all__ = [
    "CorpusCase",
    "default_corpus_dir",
    "load_cases",
    "minimize_schedule",
    "write_case",
]

CASE_SCHEMA = 1


def default_corpus_dir() -> Path:
    """The committed corpus location (tests/corpus/cases at repo root)."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus" / "cases"


# -- greedy minimization ------------------------------------------------------


def minimize_schedule(
    violates: Callable[[TraceSchedule], bool],
    schedule: TraceSchedule,
    max_checks: int = 400,
) -> TraceSchedule:
    """Greedy shrink of a violating schedule, preserving the violation.

    Tries, in order, per fixed-point round: dropping whole segments,
    halving then decrementing segment durations, zeroing the initial
    queue, and normalizing policy/jitter to the quiet baseline
    (``ideal``/1).  Each candidate is kept only if ``violates`` still
    returns True, so the result is a local minimum: no single remaining
    simplification can be applied without losing the violation.
    """
    if not violates(schedule):
        raise ValueError("minimize_schedule needs a violating schedule")
    checks = 0

    def still_violates(candidate: TraceSchedule) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return violates(candidate)

    current = schedule
    changed = True
    while changed and checks < max_checks:
        changed = False

        # drop whole segments
        if len(current.segments) > 1:
            for i in range(len(current.segments)):
                segs = current.segments[:i] + current.segments[i + 1:]
                cand = TraceSchedule(segs, current.initial_queue)
                if still_violates(cand):
                    current = cand
                    changed = True
                    break
            if changed:
                continue

        # shrink durations: halve, then single-tick trims
        for i, seg in enumerate(current.segments):
            for ticks in (seg.ticks // 2, seg.ticks - 1):
                if ticks < 1 or ticks >= seg.ticks:
                    continue
                segs = list(current.segments)
                segs[i] = Segment(ticks, seg.rate, seg.policy, seg.jitter)
                cand = TraceSchedule(tuple(segs), current.initial_queue)
                if still_violates(cand):
                    current = cand
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue

        # drain the initial queue
        if current.initial_queue > 0:
            cand = TraceSchedule(current.segments, Fraction(0))
            if still_violates(cand):
                current = cand
                changed = True
                continue

        # quiet the adversary: ideal policy, baseline jitter
        for i, seg in enumerate(current.segments):
            for quiet in (
                Segment(seg.ticks, seg.rate, "ideal", seg.jitter),
                Segment(seg.ticks, seg.rate, seg.policy, min(seg.jitter, 1)),
            ):
                if quiet == seg:
                    continue
                segs = list(current.segments)
                segs[i] = quiet
                cand = TraceSchedule(tuple(segs), current.initial_queue)
                if still_violates(cand):
                    current = cand
                    changed = True
                    break
            if changed:
                break

    return current


# -- case records -------------------------------------------------------------


@dataclass(frozen=True)
class CorpusCase:
    """One committed regression case: a falsified verdict, minimized."""

    name: str
    #: CCA spec string understood by :func:`repro.falsify.resolve_cca`
    cca: str
    #: ModelConfig fields, Fractions as strings
    cfg: dict
    #: :meth:`TraceSchedule.to_dict` payload
    schedule: dict
    #: where the hunt found it: seed/generation/index/origin
    provenance: dict
    #: the asserted outcome: violated flag + exact margin/util/max_queue
    verdict: dict
    schema: int = CASE_SCHEMA

    @property
    def covered_only(self) -> bool:
        """The oracle mode that judged this case: ``model-gap`` cases
        were found beyond the fragment (every window counts); soundness
        and plain falsifications only count model-covered windows."""
        return self.provenance.get("origin") != "model-gap"

    def model_config(self):
        from ..ccac import ModelConfig

        kwargs = {}
        for f in dataclass_fields(ModelConfig):
            if f.name not in self.cfg:
                continue
            raw = self.cfg[f.name]
            kwargs[f.name] = (
                int(raw) if f.name in ("T", "D", "jitter", "history")
                else Fraction(raw)
            )
        return ModelConfig(**kwargs)

    def trace_schedule(self) -> TraceSchedule:
        return TraceSchedule.from_dict(self.schedule)


def _cfg_dict(cfg) -> dict:
    return {f.name: str(getattr(cfg, f.name)) for f in dataclass_fields(cfg)}


def make_case(
    cca_spec: str,
    cfg,
    schedule: TraceSchedule,
    verdict,
    provenance: dict,
    name: Optional[str] = None,
) -> CorpusCase:
    """Build a :class:`CorpusCase` from a falsification outcome."""
    if name is None:
        slug = re.sub(r"[^a-z0-9]+", "-", cca_spec.lower()).strip("-")
        name = (
            f"{slug}-s{provenance.get('seed', 0)}"
            f"g{provenance.get('generation', 0)}"
            f"i{provenance.get('index', 0)}"
        )
    w = verdict.witness
    return CorpusCase(
        name=name,
        cca=cca_spec,
        cfg=_cfg_dict(cfg),
        schedule=schedule.to_dict(),
        provenance=dict(provenance),
        verdict={
            "violated": verdict.violated,
            "margin": str(verdict.margin),
            "window_start": None if w is None else w.start,
            "util": None if w is None else str(w.util),
            "max_queue": None if w is None else str(w.max_queue),
        },
    )


def write_case(case: CorpusCase, corpus_dir: Optional[Path] = None) -> Path:
    """Persist a case as ``<corpus_dir>/<name>.json``; returns the path."""
    directory = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    path.write_text(json.dumps(asdict(case), indent=2, sort_keys=True) + "\n")
    return path


def load_cases(corpus_dir: Optional[Path] = None) -> list[CorpusCase]:
    """Load every committed case, sorted by name (deterministic order)."""
    directory = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        if data.get("schema") != CASE_SCHEMA:
            raise ValueError(
                f"{path}: unsupported corpus schema {data.get('schema')!r}"
            )
        if data.get("schedule", {}).get("schema") != SCHEMA_VERSION:
            raise ValueError(f"{path}: unsupported schedule schema")
        cases.append(CorpusCase(**data))
    return cases
