"""Mass sim cross-validation grids: batched sweeps over link conditions.

Where the genetic search hunts for a single damning trace, the grid
runner maps the whole terrain: the Cartesian product of link rates,
jitter bounds, adversary policies, initial standing queues, and
environment cells (lossless plus lossy drop-tail buffers), each cell
simulated as a constant :class:`TraceSchedule` and judged by the
:class:`PropertyOracle` of its environment.  Cells are chunked across worker processes via
:func:`repro.runtime.workers.spawn_worker` — the same capped-fork
primitive the solver portfolio uses — with each worker's spans and
metric deltas relayed back through :mod:`repro.obs.relay` and merged
under the grid span, so ``ccmatic report`` attributes grid cost exactly
like in-process cost.

Every run emits an :class:`ExperimentManifest`: the full axes, seed,
CCA spec, per-cell records, and a stable JSON encoding — re-running
``ccmatic falsify --grid`` with the same manifest inputs reproduces the
records bit-for-bit (exact Fractions, deterministic seeds, no wall-clock
dependence in any recorded field).
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from fractions import Fraction
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Optional

from ..obs import metrics, tracer
from ..obs.relay import TraceContext, drain_telemetry, merge_frame
from ..runtime.errors import WorkerError
from ..runtime.workers import reap_worker, spawn_worker
from .oracle import PropertyOracle
from .schedule import SEGMENT_POLICIES, constant_schedule, run_schedule

__all__ = ["ExperimentManifest", "GridPoint", "GridSpec", "run_grid"]

MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class GridPoint:
    """One cell of the sweep: a constant link condition, judged against
    one environment of the CCAC matrix (``buffer=None`` is the lossless
    cell; a Fraction adds a lossy drop-tail cell at that buffer)."""

    rate: Fraction
    jitter: int
    policy: str
    initial_queue: Fraction
    buffer: Optional[Fraction] = None

    def environment_key(self) -> str:
        """The environment this cell's verdict speaks about."""
        if self.buffer is None:
            return "lossless"
        from ..ccac.environments import lossy_environment

        return lossy_environment(buffer=self.buffer).key()

    def to_dict(self) -> dict:
        data = {
            "rate": str(self.rate),
            "jitter": self.jitter,
            "policy": self.policy,
            "initial_queue": str(self.initial_queue),
        }
        if self.buffer is not None:
            data["buffer"] = str(self.buffer)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "GridPoint":
        buffer = data.get("buffer")
        return cls(
            rate=Fraction(data["rate"]),
            jitter=int(data["jitter"]),
            policy=str(data["policy"]),
            initial_queue=Fraction(data["initial_queue"]),
            buffer=Fraction(buffer) if buffer is not None else None,
        )


@dataclass(frozen=True)
class GridSpec:
    """Axes of a cross-validation sweep."""

    rates: tuple[Fraction, ...]
    jitters: tuple[int, ...] = (0, 1)
    policies: tuple[str, ...] = SEGMENT_POLICIES
    initial_queues: tuple[Fraction, ...] = (Fraction(0),)
    #: environment axis: ``None`` is the lossless cell, a Fraction adds
    #: a lossy cell judged at that drop-tail buffer
    buffers: tuple[Optional[Fraction], ...] = (None,)
    ticks: int = 80
    seed: int = 0

    @classmethod
    def from_model(cls, cfg, ticks: int = 80, buffers=()) -> "GridSpec":
        """A default sweep bracketing the model's operating point:
        rates around ``C`` (half, nominal, double), jitter up to the
        model bound plus one beyond, queues up to the initial box.
        ``buffers`` adds lossy cells on top of the always-present
        lossless one."""
        C = Fraction(cfg.C)
        return cls(
            rates=(C / 2, C, 2 * C),
            jitters=tuple(range(0, cfg.jitter + 2)),
            initial_queues=(Fraction(0), Fraction(cfg.initial_queue_max)),
            buffers=(None,) + tuple(Fraction(b) for b in buffers),
            ticks=ticks,
        )

    def points(self) -> list[GridPoint]:
        """All cells, in a deterministic axis-major order."""
        return [
            GridPoint(rate=r, jitter=j, policy=p, initial_queue=q, buffer=b)
            for r, j, p, q, b in itertools.product(
                self.rates, self.jitters, self.policies,
                self.initial_queues, self.buffers,
            )
        ]

    def to_dict(self) -> dict:
        return {
            "rates": [str(r) for r in self.rates],
            "jitters": list(self.jitters),
            "policies": list(self.policies),
            "initial_queues": [str(q) for q in self.initial_queues],
            "buffers": [
                str(b) if b is not None else None for b in self.buffers
            ],
            "ticks": self.ticks,
            "seed": self.seed,
        }


@dataclass
class ExperimentManifest:
    """The repeatable record of one grid run."""

    cca: str
    cfg: dict
    grid: dict
    jobs: int
    records: list = field(default_factory=list)
    schema: int = MANIFEST_SCHEMA
    #: wall-clock of the run, informational only (NOT part of the
    #: reproducible payload)
    wall_time: float = 0.0

    @property
    def violations(self) -> list[dict]:
        return [r for r in self.records if r["violated"]]

    def write(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: Path) -> "ExperimentManifest":
        data = json.loads(Path(path).read_text())
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{path}: unsupported manifest schema {data.get('schema')!r}"
            )
        return cls(**data)

    def describe(self) -> str:
        bad = len(self.violations)
        # only cells with at least one covered window carry a judged
        # margin; the rest store an advisory fallback
        judged = [
            Fraction(r["margin"]) for r in self.records
            if r.get("covered_windows")
        ]
        worst = min(judged, default=Fraction(1))
        return (
            f"{len(self.records)} configs, {bad} violating "
            f"(worst judged margin {float(worst):+.3f} "
            f"over {len(judged)} judged cells)"
        )


def _cfg_to_dict(cfg) -> dict:
    return {f.name: str(getattr(cfg, f.name)) for f in dataclass_fields(cfg)}


def _cfg_from_dict(data: dict):
    from ..ccac import ModelConfig

    kwargs = {}
    for f in dataclass_fields(ModelConfig):
        if f.name not in data:
            continue
        raw = data[f.name]
        kwargs[f.name] = (
            int(raw) if f.name in ("T", "D", "jitter", "history")
            else Fraction(raw)
        )
    return ModelConfig(**kwargs)


def _grid_task(
    cca_spec: str, cfg_data: dict, point_dicts: list, ticks: int, seed: int
) -> list:
    """Worker body: simulate and judge one chunk of grid cells.

    Module-level so it pickles under the spawn start method too; records
    are plain JSON-ready dicts (Fractions as strings) because worker
    results cross a pipe.
    """
    from . import resolve_cca

    from ..ccac.environments import lossy_environment

    cfg = _cfg_from_dict(cfg_data)
    # covered windows only: a "violated" cell means a *model-admissible*
    # window failed the property — boot transients and states the model
    # cannot reach (e.g. a huge queue under a tiny window) are terrain,
    # not findings.  Lossy cells get their own oracle: coverage narrows
    # to windows whose queue stays within the buffer (see PropertyOracle).
    oracles = {None: PropertyOracle(cfg, covered_only=True)}
    factory, _ = resolve_cca(cca_spec)
    records = []
    for data in point_dicts:
        point = GridPoint.from_dict(data)
        oracle = oracles.get(point.buffer)
        if oracle is None:
            oracle = oracles[point.buffer] = PropertyOracle(
                cfg, covered_only=True,
                environment=lossy_environment(buffer=point.buffer),
            )
        schedule = constant_schedule(
            ticks,
            rate=point.rate,
            policy=point.policy,
            jitter=point.jitter,
            initial_queue=point.initial_queue,
        )
        result = run_schedule(factory(), schedule, seed=seed)
        verdict = oracle.evaluate_result(result)
        records.append({
            **point.to_dict(),
            "environment": point.environment_key(),
            "in_fragment": schedule.in_fragment(cfg),
            "violated": verdict.violated,
            "margin": str(verdict.margin),
            "utilization": str(result.utilization(warmup=min(10, ticks // 4))),
            "max_queue": str(result.max_queue()),
            "windows": verdict.windows,
            "covered_windows": verdict.covered_windows,
        })
    return records


def run_grid(
    cca_spec: str,
    cfg,
    grid: GridSpec,
    jobs: int = 2,
    manifest_path: Optional[Path] = None,
    wall_time: Optional[float] = 600.0,
) -> ExperimentManifest:
    """Sweep the grid for ``cca_spec``; returns the manifest.

    ``jobs <= 0`` runs in-process (no fork) — handy under debuggers;
    otherwise cells are split into ``jobs`` contiguous chunks, each in a
    capped worker, results re-assembled in cell order.  A worker that
    dies or times out fails the run loudly (:class:`WorkerError`) —
    a silently missing chunk would make the manifest lie about coverage.
    """
    points = grid.points()
    tr = tracer()
    reg = metrics()
    start = time.perf_counter()
    manifest = ExperimentManifest(
        cca=cca_spec, cfg=_cfg_to_dict(cfg), grid=grid.to_dict(), jobs=jobs
    )
    if jobs <= 0:
        manifest.records = _grid_task(
            cca_spec, manifest.cfg, [p.to_dict() for p in points],
            grid.ticks, grid.seed,
        )
    else:
        jobs = min(jobs, len(points)) or 1
        bounds = [
            (len(points) * k // jobs, len(points) * (k + 1) // jobs)
            for k in range(jobs)
        ]
        chunks = [points[lo:hi] for lo, hi in bounds]
        with tr.span("falsify.grid", cca=cca_spec, cells=len(points),
                     jobs=jobs) as gspan:
            anchor = getattr(gspan, "span_id", None)
            anchor_depth = getattr(gspan, "depth", 0)
            workers: dict[int, tuple] = {}
            chunk_records: dict[int, list] = {}
            telemetry: dict[int, list] = {}
            try:
                for k, chunk in enumerate(chunks):
                    workers[k] = spawn_worker(
                        _grid_task,
                        (
                            cca_spec, manifest.cfg,
                            [p.to_dict() for p in chunk],
                            grid.ticks, grid.seed,
                        ),
                        trace_ctx=TraceContext(
                            trace_id=tr.trace_id,
                            parent_span=anchor,
                            worker_id=f"g{k}",
                        ),
                    )
                pending = dict(workers)
                deadline = (
                    None if wall_time is None else start + wall_time
                )
                while pending:
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - time.perf_counter()
                        if timeout <= 0:
                            break
                    conns = {conn: k for k, (_p, conn) in pending.items()}
                    ready = _wait_connections(list(conns), timeout=timeout)
                    if not ready:
                        break
                    for conn in ready:
                        k = conns[conn]
                        proc, _ = pending[k]
                        try:
                            msg = conn.recv()
                        except (EOFError, OSError):
                            msg = (
                                "crash",
                                f"worker died with exit code {proc.exitcode}",
                            )
                        if (
                            isinstance(msg, tuple) and len(msg) == 2
                            and msg[0] == "telemetry"
                        ):
                            telemetry.setdefault(k, []).append(msg[1])
                            continue
                        pending.pop(k)
                        status, payload = msg
                        if status != "ok":
                            raise WorkerError(
                                f"grid worker g{k} failed ({status}): "
                                f"{payload}"
                            )
                        chunk_records[k] = payload
                if pending:
                    raise WorkerError(
                        f"grid run exceeded {wall_time:.1f}s with "
                        f"{len(pending)} worker(s) outstanding"
                    )
            finally:
                for k, (proc, conn) in workers.items():
                    drain_telemetry(conn, telemetry.setdefault(k, []))
                    reap_worker(proc, conn)
                for k, frames in sorted(telemetry.items()):
                    for frame in frames:
                        merge_frame(
                            frame, anchor_span=anchor,
                            anchor_depth=anchor_depth,
                        )
            manifest.records = [
                record
                for k in range(len(chunks))
                for record in chunk_records[k]
            ]
            gspan.set(violations=len(manifest.violations))
    reg.counter("falsify.grid.cells").inc(len(manifest.records))
    manifest.wall_time = time.perf_counter() - start
    if manifest_path is not None:
        manifest.write(manifest_path)
    return manifest
