"""Adversarial falsification fleet.

Everything the SMT verifier *claims* gets hunted here: a CC-Fuzz-style
genetic search (:mod:`~repro.falsify.search`) evolves trace schedules
(:mod:`~repro.falsify.schedule`) toward violations of the paper's
desired property as judged on concrete simulator runs
(:mod:`~repro.falsify.oracle`); mass cross-validation grids
(:mod:`~repro.falsify.grid`) sweep link-rate/jitter/policy/buffer
configurations across worker processes; and every disagreement between
the simulator and an SMT verdict is minimized into a committed
regression corpus (:mod:`~repro.falsify.corpus`) that pytest replays
forever.

The dividing line throughout is :meth:`TraceSchedule.in_fragment`: a
violation found *inside* the SMT model's fragment on a verified CCA is
a soundness incident (``SoundnessError`` + flight dump + corpus case);
one found *beyond* the fragment is a model-gap finding — interesting,
reported, but not a contradiction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from .corpus import (
    CorpusCase,
    default_corpus_dir,
    load_cases,
    make_case,
    minimize_schedule,
    write_case,
)
from .grid import ExperimentManifest, GridPoint, GridSpec, run_grid
from .oracle import PropertyOracle, TraceVerdict, WindowReport
from .schedule import (
    SEGMENT_POLICIES,
    ScheduleSpace,
    Segment,
    TraceSchedule,
    constant_schedule,
    run_schedule,
)
from .search import (
    FalsifyBudget,
    FalsifyResult,
    FoundViolation,
    TraceSearch,
    replay_schedule,
)
from .session import FalsifyReport, falsify_cca

__all__ = [
    "SEGMENT_POLICIES",
    "CorpusCase",
    "ExperimentManifest",
    "FalsifyBudget",
    "FalsifyReport",
    "FalsifyResult",
    "FoundViolation",
    "GridPoint",
    "GridSpec",
    "PropertyOracle",
    "ScheduleSpace",
    "Segment",
    "TraceSchedule",
    "TraceSearch",
    "TraceVerdict",
    "WindowReport",
    "constant_schedule",
    "default_corpus_dir",
    "falsify_cca",
    "load_cases",
    "make_case",
    "minimize_schedule",
    "replay_schedule",
    "resolve_cca",
    "run_grid",
    "run_schedule",
    "write_case",
]


def resolve_cca(spec: str) -> tuple[Callable[[], object], bool]:
    """Resolve a CLI CCA spec into ``(factory, smt_verifiable)``.

    ``factory`` builds a fresh executable CCA per call.  ``smt_verifiable``
    is True when the spec names a template the SMT verifier can also
    judge (so falsification can be cross-checked against a verdict).

    Specs::

        rocc            TemplateCCA of the paper's RoCC template
        eq3             TemplateCCA of the paper's equation (iii)
        const:<cwnd>    TemplateCCA of a constant-cwnd template
        rocc-native     the hand-written RoCC (executable only)
        aimd[:<thresh>] AIMD with optional delay threshold
                        (aimd:8 is the deliberately weakened demo)
        cubic[:<thresh>], vegas, copa
    """
    from ..ccas import AIMD, CopaLike, CubicLike, RoCC, TemplateCCA, VegasLike
    from ..core import constant_cwnd, paper_eq_iii, rocc

    if spec == "rocc":
        return (lambda: TemplateCCA(rocc())), True
    if spec == "eq3":
        return (lambda: TemplateCCA(paper_eq_iii())), True
    if spec.startswith("const:"):
        cwnd = Fraction(spec.split(":", 1)[1])
        return (lambda: TemplateCCA(constant_cwnd(cwnd))), True
    if spec == "rocc-native":
        return (lambda: RoCC()), False
    if spec == "aimd" or spec.startswith("aimd:"):
        thresh = Fraction(spec.split(":", 1)[1]) if ":" in spec else Fraction(2)
        return (lambda: AIMD(delay_threshold=thresh)), False
    if spec == "cubic" or spec.startswith("cubic:"):
        thresh = Fraction(spec.split(":", 1)[1]) if ":" in spec else Fraction(2)
        return (lambda: CubicLike(delay_threshold=thresh)), False
    if spec == "vegas":
        return (lambda: VegasLike()), False
    if spec == "copa":
        return (lambda: CopaLike()), False
    raise ValueError(
        f"unknown CCA spec {spec!r} (try rocc, eq3, const:<cwnd>, "
        f"aimd[:<thresh>], cubic[:<thresh>], vegas, copa, rocc-native)"
    )
