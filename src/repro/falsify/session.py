"""Falsification sessions: search + verdict semantics + corpus wiring.

:func:`falsify_cca` runs one genetic hunt and applies the fleet's
verdict discipline:

* **in-fragment violation, SMT-verified CCA** — the simulator (a
  refinement of the model) and the solver disagree: that is a soundness
  incident.  The flight recorder dumps, the schedule is minimized into
  a committed corpus case tagged ``origin=soundness``, and
  :class:`~repro.runtime.errors.SoundnessError` is raised.  Soundness
  failures are never downgraded to a report.
* **in-fragment violation, unverified CCA** — an honest falsification
  (the whole point of ``ccmatic falsify aimd:8``): minimized, recorded
  with ``origin=falsified``, reported.
* **beyond-fragment violation** — a model-gap finding: the behaviour
  is outside what the SMT encoding can express, so there is no verdict
  to contradict.  Recorded with ``origin=model-gap``, reported as
  advisory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..obs import metrics, tracer
from ..obs.flight import dump_flight
from ..runtime.errors import SoundnessError
from .corpus import make_case, minimize_schedule, write_case
from .oracle import PropertyOracle
from .schedule import ScheduleSpace, TraceSchedule
from .search import FalsifyBudget, FalsifyResult, TraceSearch

__all__ = ["FalsifyReport", "falsify_cca"]


@dataclass
class FalsifyReport:
    """Outcome of one falsification session (non-soundness paths)."""

    cca: str
    in_fragment: bool
    verified: bool
    search: FalsifyResult
    #: minimized violating schedules, parallel to ``corpus_paths``
    minimized: list[TraceSchedule] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return self.search.survived

    def describe(self) -> str:
        scope = "in-fragment" if self.in_fragment else "beyond-fragment"
        head = f"{self.cca} [{scope}]: {self.search.describe()}"
        if self.survived:
            return head
        lines = [head]
        for schedule, path in zip(self.minimized, self.corpus_paths):
            where = str(path) if path else "(not recorded)"
            lines.append(f"  minimized {schedule.describe()} -> {where}")
        if not self.in_fragment:
            lines.append(
                "  note: beyond-fragment finding — outside the SMT model, "
                "no verdict contradicted"
            )
        return "\n".join(lines)


def falsify_cca(
    factory: Callable[[], object],
    cfg,
    *,
    spec: str = "<anonymous>",
    budget: FalsifyBudget = FalsifyBudget(),
    seed: int = 0,
    ticks: int = 120,
    in_fragment: bool = True,
    verified: bool = False,
    space: Optional[ScheduleSpace] = None,
    corpus_dir: Optional[Path] = None,
    write_corpus: bool = True,
    stats=None,
) -> FalsifyReport:
    """Hunt for property violations of one CCA; apply verdict semantics.

    ``verified=True`` asserts an SMT "verified" verdict exists for this
    CCA under ``cfg`` — an in-fragment violation then raises
    :class:`SoundnessError` (after dumping flight state and committing
    the minimized corpus case).  ``stats``, when given, is a
    :class:`~repro.cegis.interfaces.CegisStats` whose
    ``falsification_attempts`` / ``falsification_survivals`` counters
    are updated.
    """
    if space is None:
        space = (
            ScheduleSpace.from_model(cfg, ticks=ticks)
            if in_fragment
            else ScheduleSpace.beyond_fragment(cfg, ticks=ticks)
        )
    oracle = PropertyOracle(cfg, covered_only=in_fragment)
    tr = tracer()
    reg = metrics()
    with tr.span("falsify.session", cca=spec, seed=seed,
                 in_fragment=in_fragment, verified=verified):
        result = TraceSearch(factory, oracle, space, budget, seed=seed).run()
        if stats is not None:
            stats.falsification_attempts += result.attempts
            if result.survived:
                stats.falsification_survivals += 1
        report = FalsifyReport(
            cca=spec, in_fragment=in_fragment, verified=verified,
            search=result,
        )
        if result.survived:
            return report

        def violates(schedule: TraceSchedule) -> bool:
            return oracle.evaluate(factory(), schedule).violated

        if in_fragment and verified:
            origin = "soundness"
        elif in_fragment:
            origin = "falsified"
        else:
            origin = "model-gap"
        for found in result.violations:
            minimized = minimize_schedule(violates, found.schedule)
            verdict = oracle.evaluate(factory(), minimized)
            report.minimized.append(minimized)
            path: Optional[Path] = None
            if write_corpus:
                case = make_case(
                    spec, cfg, minimized, verdict,
                    provenance={
                        "seed": found.seed,
                        "generation": found.generation,
                        "index": found.index,
                        "origin": origin,
                        "evaluations": budget.evaluations,
                        "population": budget.population,
                    },
                )
                path = write_case(case, corpus_dir)
            report.corpus_paths.append(path)
        if origin == "soundness":
            reg.counter("falsify.soundness").inc()
            dump_flight("falsify-disagreement")
            recorded = ", ".join(str(p) for p in report.corpus_paths if p)
            raise SoundnessError(
                f"falsifier refuted SMT-verified CCA {spec!r}: in-fragment "
                f"schedule {report.minimized[0].describe()} violates the "
                f"desired property ({result.violations[0].verdict.describe()})"
                + (f"; corpus case(s): {recorded}" if recorded else "")
            )
        return report
