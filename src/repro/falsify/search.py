"""CC-Fuzz-style genetic search over trace schedules.

The searcher evolves a population of :class:`TraceSchedule` genomes
toward property violations, in the spirit of CC-Fuzz's genetic trace
search (arXiv:2207.07300): fitness is the oracle's margin-to-violation,
selection keeps the closest-to-violating half, and offspring are built
by seeded mutation (perturb a segment's rate/policy/jitter/duration,
split, drop, re-queue) and single-point crossover.

Determinism is a hard requirement, not a nicety: every probabilistic
decision draws from one ``random.Random(seed)`` in a fixed order — the
same discipline as the chaos harness (:mod:`repro.chaos.faults`) — and
the budget is counted in *evaluations*, not wall-clock, so a run is
bit-for-bit reproducible and any found counterexample is replayable
from ``(seed, generation, index)`` alone via :func:`replay_schedule`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from random import Random
from typing import Callable, Optional

from ..obs import metrics, tracer
from .oracle import PropertyOracle, TraceVerdict
from .schedule import ScheduleSpace, Segment, TraceSchedule

__all__ = [
    "FalsifyBudget",
    "FoundViolation",
    "FalsifyResult",
    "TraceSearch",
    "replay_schedule",
]


@dataclass(frozen=True)
class FalsifyBudget:
    """Search effort, in deterministic units."""

    #: total trace evaluations (the reproducible budget unit)
    evaluations: int = 1500
    population: int = 16
    max_generations: int = 200
    #: stop after this many distinct violations (0 = exhaust the budget)
    stop_after: int = 1
    #: optional wall-clock safety net, seconds (None = none); ONLY a
    #: backstop — a run that trips it is not reproducible and says so
    time_budget: Optional[float] = None


@dataclass(frozen=True)
class FoundViolation:
    """One violating schedule and where the search found it."""

    schedule: TraceSchedule
    verdict: TraceVerdict
    seed: int
    generation: int
    index: int


@dataclass
class FalsifyResult:
    """Outcome of one falsification search."""

    survived: bool
    attempts: int
    generations: int
    violations: list[FoundViolation] = field(default_factory=list)
    best_margin: Fraction = Fraction(1)
    best_schedule: Optional[TraceSchedule] = None
    seed: int = 0
    #: True when the wall-clock backstop cut the (otherwise
    #: deterministic) run short
    clock_expired: bool = False

    def describe(self) -> str:
        if self.survived:
            return (
                f"SURVIVED {self.attempts} attempts over "
                f"{self.generations} generation(s) "
                f"(seed {self.seed}, best margin "
                f"{float(self.best_margin):+.3f})"
            )
        v = self.violations[0]
        return (
            f"FALSIFIED at generation {v.generation} "
            f"(seed {self.seed}, attempt {self.attempts}): "
            f"{v.verdict.describe()} on {v.schedule.describe()}"
        )


class TraceSearch:
    """Seeded genetic search for property-violating schedules.

    ``cca_factory`` builds a fresh CCA per evaluation (the simulator
    resets state, but a factory keeps hidden state impossible);
    ``oracle`` judges traces; ``space`` bounds the genome.
    """

    #: elite fraction kept each generation
    ELITE = 0.5

    def __init__(
        self,
        cca_factory: Callable[[], object],
        oracle: PropertyOracle,
        space: ScheduleSpace,
        budget: FalsifyBudget = FalsifyBudget(),
        seed: int = 0,
    ):
        self.cca_factory = cca_factory
        self.oracle = oracle
        self.space = space
        self.budget = budget
        self.seed = seed

    # -- mutation operators ---------------------------------------------------

    def _mutate(self, rng: Random, schedule: TraceSchedule) -> TraceSchedule:
        segments = list(schedule.segments)
        initial_queue = schedule.initial_queue
        op = rng.choice(
            ("rate", "policy", "jitter", "duration", "split", "drop", "queue")
        )
        i = rng.randrange(len(segments))
        seg = segments[i]
        if op == "rate":
            segments[i] = Segment(seg.ticks, rng.choice(self.space.rates),
                                  seg.policy, seg.jitter)
        elif op == "policy":
            segments[i] = Segment(seg.ticks, seg.rate,
                                  rng.choice(self.space.policies), seg.jitter)
        elif op == "jitter":
            segments[i] = Segment(seg.ticks, seg.rate, seg.policy,
                                  rng.choice(self.space.jitters))
        elif op == "duration":
            ticks = max(1, seg.ticks + rng.choice((-10, -5, -2, 2, 5, 10)))
            segments[i] = Segment(ticks, seg.rate, seg.policy, seg.jitter)
        elif op == "split" and len(segments) < self.space.max_segments \
                and seg.ticks >= 2:
            cut = rng.randint(1, seg.ticks - 1)
            left = Segment(cut, seg.rate, seg.policy, seg.jitter)
            right = self.space.random_segment(rng, seg.ticks - cut)
            segments[i:i + 1] = [left, right]
        elif op == "drop" and len(segments) > 1:
            del segments[i]
        elif op == "queue":
            initial_queue = rng.choice(self.space.initial_queues)
        mutated = TraceSchedule(tuple(segments), initial_queue)
        return self._clamp(mutated)

    def _crossover(
        self, rng: Random, a: TraceSchedule, b: TraceSchedule
    ) -> TraceSchedule:
        ca = rng.randint(1, len(a.segments))
        cb = rng.randint(0, len(b.segments))
        segments = (a.segments[:ca] + b.segments[cb:])[: self.space.max_segments]
        child = TraceSchedule(
            segments or a.segments,
            rng.choice((a.initial_queue, b.initial_queue)),
        )
        return self._clamp(child)

    def _clamp(self, schedule: TraceSchedule) -> TraceSchedule:
        """Keep total duration inside the space's tick bounds."""
        total = schedule.ticks
        if total <= self.space.max_ticks and total >= self.space.min_ticks:
            return schedule
        if total > self.space.max_ticks:
            # trim from the tail
            budget = self.space.max_ticks
            kept: list[Segment] = []
            for seg in schedule.segments:
                if budget <= 0:
                    break
                take = min(seg.ticks, budget)
                kept.append(Segment(take, seg.rate, seg.policy, seg.jitter))
                budget -= take
            return TraceSchedule(tuple(kept), schedule.initial_queue)
        # too short: stretch the last segment
        last = schedule.segments[-1]
        deficit = self.space.min_ticks - total
        stretched = Segment(last.ticks + deficit, last.rate, last.policy,
                            last.jitter)
        return TraceSchedule(
            schedule.segments[:-1] + (stretched,), schedule.initial_queue
        )

    # -- the search -----------------------------------------------------------

    def run(self) -> FalsifyResult:
        rng = Random(self.seed)
        budget = self.budget
        reg = metrics()
        tr = tracer()
        deadline = (
            None if budget.time_budget is None
            else time.monotonic() + budget.time_budget
        )
        result = FalsifyResult(
            survived=True, attempts=0, generations=0, seed=self.seed
        )
        seen: set = set()

        def evaluate(schedule, generation, index) -> Optional[TraceVerdict]:
            if result.attempts >= budget.evaluations:
                return None
            result.attempts += 1
            reg.counter("falsify.attempts").inc()
            verdict = self.oracle.evaluate(self.cca_factory(), schedule)
            if verdict.margin < result.best_margin:
                result.best_margin = verdict.margin
                result.best_schedule = schedule
            if verdict.violated and schedule.key() not in seen:
                seen.add(schedule.key())
                reg.counter("falsify.violations").inc()
                result.violations.append(FoundViolation(
                    schedule=schedule, verdict=verdict, seed=self.seed,
                    generation=generation, index=index,
                ))
                if tr.enabled:
                    tr.event(
                        "falsify.violation",
                        generation=generation,
                        index=index,
                        attempt=result.attempts,
                        margin=float(verdict.margin),
                        msg=(
                            f"[falsify] violation at gen {generation} "
                            f"idx {index}: {verdict.describe()}"
                        ),
                    )
            return verdict

        def done() -> bool:
            if budget.stop_after and len(result.violations) >= budget.stop_after:
                return True
            if result.attempts >= budget.evaluations:
                return True
            if deadline is not None and time.monotonic() > deadline:
                result.clock_expired = True
                return True
            return False

        with tr.span("falsify.search", seed=self.seed,
                     evaluations=budget.evaluations):
            # generation 0: fresh random individuals
            population: list[tuple[TraceSchedule, TraceVerdict]] = []
            for index in range(budget.population):
                schedule = self.space.random_schedule(rng)
                verdict = evaluate(schedule, 0, index)
                if verdict is None:
                    break
                population.append((schedule, verdict))
                if done():
                    break
            result.generations = 1

            while not done() and result.generations < budget.max_generations:
                generation = result.generations
                population.sort(key=lambda pair: pair[1].margin)
                elite = population[: max(2, int(len(population) * self.ELITE))]
                offspring: list[tuple[TraceSchedule, TraceVerdict]] = []
                index = 0
                while len(elite) + len(offspring) < budget.population:
                    if rng.random() < 0.3 and len(elite) >= 2:
                        a, b = rng.sample(elite, 2)
                        child = self._crossover(rng, a[0], b[0])
                    else:
                        parent = rng.choice(elite)[0]
                        child = self._mutate(rng, parent)
                    verdict = evaluate(child, generation, index)
                    index += 1
                    if verdict is None:
                        break
                    offspring.append((child, verdict))
                    if done():
                        break
                population = elite + offspring
                result.generations += 1

        result.survived = not result.violations
        return result


def replay_schedule(
    cca_factory: Callable[[], object],
    oracle: PropertyOracle,
    space: ScheduleSpace,
    budget: FalsifyBudget,
    seed: int,
    generation: int,
    index: int,
) -> Optional[FoundViolation]:
    """Re-derive the violation found at ``(seed, generation, index)``.

    The search is deterministic in its seed and budget, so re-running it
    reproduces the identical population history; this returns the
    recorded violation at those coordinates (None if the coordinates
    hold no violation — e.g. a different budget was supplied).
    """
    result = TraceSearch(cca_factory, oracle, space, budget, seed=seed).run()
    for violation in result.violations:
        if violation.generation == generation and violation.index == index:
            return violation
    return None
