"""Trace schedules: serializable, replayable network behaviours.

A :class:`TraceSchedule` is the falsifier's genome — a piecewise
composition of the simulator's workload primitives (rate steps, jitter
bursts, loss-like outages, queue drains) plus an adversary-policy
timeline and an initial standing queue.  Schedules are

* **executable** — :func:`run_schedule` compiles one into the per-tick
  ``capacity`` / ``policy`` / ``jitter`` callables the simulator takes
  (:class:`repro.sim.JitteryLink` accepts all three as functions);
* **exactly serializable** — rates and queues are ``Fraction`` values
  round-tripped as strings, so a schedule written into the regression
  corpus replays bit-for-bit;
* **classifiable** — :meth:`TraceSchedule.in_fragment` says whether the
  behaviour stays inside the SMT model's fragment (constant link rate at
  the model's ``C``, jitter at most the model's bound).  A property
  violation found *inside* the fragment on a verified CCA contradicts
  the solver; one found outside is a model-gap finding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction

from ..sim.workloads import RateFn, constant_rate

#: policies a schedule segment may select (the simulator's concrete
#: adversaries; "random" is excluded — schedules are the randomness)
SEGMENT_POLICIES = ("ideal", "lazy", "max_waste", "aggregate")

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Segment:
    """One homogeneous stretch of link behaviour."""

    #: duration in RTT ticks (>= 1)
    ticks: int
    #: link rate during the segment (0 models a loss-like outage)
    rate: Fraction
    #: adversary policy during the segment
    policy: str = "ideal"
    #: jitter bound during the segment (a "jitter burst" is a segment
    #: with elevated jitter)
    jitter: int = 1

    def __post_init__(self):
        if self.ticks < 1:
            raise ValueError(f"segment needs >= 1 tick, got {self.ticks}")
        if self.policy not in SEGMENT_POLICIES:
            raise ValueError(
                f"unknown segment policy {self.policy!r} "
                f"(not in {SEGMENT_POLICIES})"
            )
        if self.rate < 0 or self.jitter < 0:
            raise ValueError("segment rate and jitter must be non-negative")
        object.__setattr__(self, "rate", Fraction(self.rate))

    def to_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "rate": str(self.rate),
            "policy": self.policy,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Segment":
        return cls(
            ticks=int(data["ticks"]),
            rate=Fraction(data["rate"]),
            policy=str(data["policy"]),
            jitter=int(data["jitter"]),
        )


@dataclass(frozen=True)
class TraceSchedule:
    """A whole-run network behaviour: segments plus initial conditions."""

    segments: tuple[Segment, ...]
    #: standing queue at connection start (a pre-filled buffer the CCA
    #: must drain — the model's adversarial initial queue)
    initial_queue: Fraction = Fraction(0)

    def __post_init__(self):
        if not self.segments:
            raise ValueError("a schedule needs at least one segment")
        object.__setattr__(self, "segments", tuple(self.segments))
        object.__setattr__(self, "initial_queue", Fraction(self.initial_queue))
        if self.initial_queue < 0:
            raise ValueError("initial queue must be non-negative")

    # -- execution shape ------------------------------------------------------

    @property
    def ticks(self) -> int:
        return sum(s.ticks for s in self.segments)

    def _index_at(self, t: int) -> int:
        """Index of the segment covering tick ``t`` (ticks are 1-based
        in the sim; past the end, the last segment persists)."""
        remaining = max(t - 1, 0)
        for i, seg in enumerate(self.segments):
            if remaining < seg.ticks:
                return i
            remaining -= seg.ticks
        return len(self.segments) - 1

    def _segment_at(self, t: int) -> Segment:
        return self.segments[self._index_at(t)]

    def rate_fn(self) -> RateFn:
        """Piecewise link rate: each segment is a
        :func:`~repro.sim.workloads.constant_rate` stretch and the
        composition is the step pattern."""
        fns = [constant_rate(seg.rate) for seg in self.segments]
        return lambda t: fns[self._index_at(t)](t)

    def policy_fn(self):
        return lambda t: self._segment_at(t).policy

    def jitter_fn(self):
        return lambda t: self._segment_at(t).jitter

    # -- classification -------------------------------------------------------

    def max_jitter(self) -> int:
        return max(s.jitter for s in self.segments)

    def in_fragment(self, cfg) -> bool:
        """Whether every behaviour of this schedule is admissible in the
        SMT model for ``cfg`` (a :class:`repro.ccac.ModelConfig`).

        The model fixes the link rate at ``C`` and lets the adversary
        jitter service by at most ``cfg.jitter * D``; policies only pick
        *which* admissible behaviour happens, so any policy timeline is
        in-fragment.  Variable rates, outages, and jitter beyond the
        model bound are outside.
        """
        return all(
            s.rate == cfg.C and s.jitter <= cfg.jitter for s in self.segments
        ) and self.initial_queue <= cfg.initial_queue_max

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "segments": [s.to_dict() for s in self.segments],
            "initial_queue": str(self.initial_queue),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSchedule":
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schedule schema {data.get('schema')!r}"
            )
        return cls(
            segments=tuple(
                Segment.from_dict(s) for s in data["segments"]
            ),
            initial_queue=Fraction(data["initial_queue"]),
        )

    def key(self) -> tuple:
        """Hashable identity for dedup across generations."""
        return (
            tuple((s.ticks, s.rate, s.policy, s.jitter) for s in self.segments),
            self.initial_queue,
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{s.ticks}t@{s.rate}/{s.policy}"
            + (f"/j{s.jitter}" if s.jitter != 1 else "")
            for s in self.segments
        )
        q = f" q0={self.initial_queue}" if self.initial_queue else ""
        return f"[{parts}]{q}"


def constant_schedule(
    ticks: int,
    rate: Fraction | int = Fraction(1),
    policy: str = "ideal",
    jitter: int = 1,
    initial_queue: Fraction | int = Fraction(0),
) -> TraceSchedule:
    """The simplest schedule: one homogeneous segment."""
    return TraceSchedule(
        segments=(Segment(ticks=ticks, rate=Fraction(rate), policy=policy,
                          jitter=jitter),),
        initial_queue=Fraction(initial_queue),
    )


def run_schedule(cca, schedule: TraceSchedule, seed: int = 0):
    """Execute ``cca`` against ``schedule``; returns a
    :class:`repro.sim.SimResult` (exact arithmetic, fully deterministic
    for deterministic CCAs)."""
    from ..sim.runner import run_simulation

    return run_simulation(
        cca,
        ticks=schedule.ticks,
        capacity=schedule.rate_fn(),
        jitter=schedule.jitter_fn(),
        policy=schedule.policy_fn(),
        seed=seed,
        initial_queue=schedule.initial_queue,
    )


# -- mutation space -----------------------------------------------------------


@dataclass(frozen=True)
class ScheduleSpace:
    """The search space the genetic falsifier mutates within.

    ``from_model(cfg)`` builds the *in-fragment* space: rates pinned to
    the model's ``C``, jitter at most the model bound — violations found
    here contradict an SMT "verified" verdict.  ``beyond_fragment(cfg)``
    widens to rate steps, outages, and jitter bursts the SMT encoding
    cannot express — violations there are model-gap findings.
    """

    rates: tuple[Fraction, ...]
    policies: tuple[str, ...] = SEGMENT_POLICIES
    jitters: tuple[int, ...] = (1,)
    initial_queues: tuple[Fraction, ...] = (Fraction(0),)
    max_segments: int = 6
    min_ticks: int = 40
    max_ticks: int = 160

    @classmethod
    def from_model(cls, cfg, ticks: int = 120) -> "ScheduleSpace":
        """The model-admissible (in-fragment) space for ``cfg``."""
        queue_limit = cfg.delay_thresh * cfg.C * cfg.D
        queues = tuple(
            q for q in (
                Fraction(0),
                queue_limit / 2,
                queue_limit,
                cfg.initial_queue_max,
            )
            if q <= cfg.initial_queue_max
        )
        return cls(
            rates=(Fraction(cfg.C),),
            jitters=tuple(range(0, cfg.jitter + 1)) or (0,),
            initial_queues=queues,
            min_ticks=min(40, ticks),
            max_ticks=max(ticks, 40),
        )

    @classmethod
    def beyond_fragment(cls, cfg, ticks: int = 120) -> "ScheduleSpace":
        """The widened space: rate dynamics and jitter bursts outside
        the SMT fragment (plus everything in-fragment)."""
        base = cls.from_model(cfg, ticks=ticks)
        C = Fraction(cfg.C)
        return replace(
            base,
            rates=(C / 4, C / 2, C, 2 * C, Fraction(0)),
            jitters=tuple(sorted(set(base.jitters) | {cfg.jitter * 2 + 1})),
        )

    def random_segment(self, rng, ticks: int) -> Segment:
        return Segment(
            ticks=ticks,
            rate=rng.choice(self.rates),
            policy=rng.choice(self.policies),
            jitter=rng.choice(self.jitters),
        )

    def random_schedule(self, rng) -> TraceSchedule:
        """A fresh random individual (used to seed populations)."""
        n = rng.randint(1, self.max_segments)
        total = rng.randint(self.min_ticks, self.max_ticks)
        cuts = sorted(rng.sample(range(1, total), n - 1)) if n > 1 else []
        lengths = [
            b - a for a, b in zip([0] + cuts, cuts + [total])
        ]
        segments = tuple(
            self.random_segment(rng, max(1, length)) for length in lengths
        )
        return TraceSchedule(
            segments=segments,
            initial_queue=rng.choice(self.initial_queues),
        )
