"""The falsifier's property oracle: the paper's desired property on
concrete simulated traces.

The SMT verifier proves the *relaxed* steady-state property over every
admissible window of ``T`` timesteps (paper §3.1.1):

    (high utilization OR cwnd increased) AND (queue bounded OR cwnd decreased)

The oracle evaluates exactly that, windowed, on a simulator run: slide a
``T``-tick window over the trace and check each window whose starting
state lies inside the model's adversarial box (initial queue and history
cwnds within the configured bounds — windows outside the box are not
covered by the SMT proof and must not raise disagreements).  Everything
is exact ``Fraction`` arithmetic, so verdicts and margins are
bit-reproducible and a corpus case can assert them with ``==``.

Fitness for the genetic search is **margin-to-violation**: the smallest
window margin, where a window's margin is

    min( max(util_margin, cwnd_inc_margin),
         max(queue_margin, cwnd_dec_margin) )

normalized so the components are comparable.  A margin below zero is a
violation; the search evolves schedules toward the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from .schedule import TraceSchedule, run_schedule

__all__ = ["PropertyOracle", "TraceVerdict", "WindowReport"]


@dataclass(frozen=True)
class WindowReport:
    """The relaxed property evaluated on one window."""

    start: int
    holds: bool
    covered: bool            # starting state inside the model's box
    margin: Fraction         # < 0 iff the property is violated
    util: Fraction           # delivered / available over the window
    max_queue: Fraction


@dataclass(frozen=True)
class TraceVerdict:
    """Oracle verdict on one whole simulated trace."""

    violated: bool
    #: min margin over *eligible* windows (the fitness the search
    #: minimizes); < 0 iff ``violated``
    margin: Fraction
    #: first violating window, if any
    witness: Optional[WindowReport]
    windows: int
    covered_windows: int

    def describe(self) -> str:
        if not self.violated:
            return f"holds (margin {float(self.margin):+.3f})"
        w = self.witness
        return (
            f"VIOLATED at window t={w.start} "
            f"(util={float(w.util):.3f}, max_queue={float(w.max_queue):.3f}, "
            f"margin {float(w.margin):+.3f})"
        )


class PropertyOracle:
    """Windowed relaxed-property check derived from a
    :class:`repro.ccac.ModelConfig`.

    With an ``environment`` (an :class:`~repro.ccac.EnvironmentSpec`),
    verdicts contradict *that* cell of the CCAC matrix instead of the
    lossless model.  The simulator itself never drops — so only
    environments whose model admits the simulated trace as-is can be
    judged: config-override kinds (``jitter``/``thresholds``) fold into
    ``cfg``, and a ``lossy`` cell narrows coverage to windows whose
    queue never reaches the buffer.  Soundness of the lossy narrowing:
    a zero-loss trace whose queue stays at or below the buffer satisfies
    every finite-buffer constraint with ``L ≡ 0`` (drops are only
    *forced* at a full buffer), and with ``L ≡ 0`` the lossy desired
    property's loss-budget leg holds trivially — so a base-property
    violation on such a window refutes a lossy "verified" verdict
    exactly as it refutes a lossless one.  Multiflow cells are rejected:
    the simulator is single-flow.
    """

    def __init__(self, cfg, covered_only: bool = True, environment=None):
        self.environment = environment
        self._buffer = None
        if environment is not None:
            if environment.kind == "multiflow":
                raise ValueError(
                    "the single-flow simulator cannot judge multiflow "
                    "environments"
                )
            cfg = environment.model_config(cfg)
            if environment.kind == "lossy":
                self._buffer = environment.param("buffer")
        self.cfg = cfg
        #: only count windows the SMT proof covers (the in-fragment
        #: disagreement rule); ``False`` widens to every window — used
        #: for beyond-fragment robustness findings where there is no
        #: proof to contradict
        self.covered_only = covered_only
        self.queue_limit = cfg.delay_thresh * cfg.C * cfg.D
        # normalizers keeping the three margin species comparable
        self._norm_queue = max(self.queue_limit, Fraction(1))
        self._norm_cwnd = max(cfg.bdp, Fraction(1))

    # -- single window --------------------------------------------------------

    def window(self, result, start: int) -> WindowReport:
        """Evaluate the relaxed property on ``[start, start + T]``."""
        cfg = self.cfg
        end = start + cfg.T
        delivered = result.S[end] - result.S[start]
        if result.cap_cum:
            available = result.cap_cum[end] - result.cap_cum[start]
        else:
            available = cfg.C * cfg.T
        target = cfg.util_thresh * available
        util = delivered / available if available else Fraction(0)
        util_ok = delivered >= target
        util_margin = (delivered - target) / max(target, Fraction(1))

        queue = [result.A[t] - result.S[t] for t in range(start, end + 1)]
        max_queue = max(queue)
        queue_ok = max_queue <= self.queue_limit
        queue_margin = (self.queue_limit - max_queue) / self._norm_queue

        dc = result.cwnd[end] - result.cwnd[start]
        inc, dec = dc > 0, dc < 0
        inc_margin = dc / self._norm_cwnd
        dec_margin = -dc / self._norm_cwnd

        holds = (util_ok or inc) and (queue_ok or dec)
        margin = min(
            max(util_margin, inc_margin), max(queue_margin, dec_margin)
        )
        return WindowReport(
            start=start,
            holds=holds,
            covered=self._covered(result, start),
            margin=margin,
            util=util,
            max_queue=max_queue,
        )

    def _covered(self, result, start: int) -> bool:
        """Whether the SMT proof covers the window starting at ``start``.

        The proof quantifies over every model-admissible trace, so a sim
        window is covered exactly when the time-shifted trace (counters
        re-zeroed at ``start``) satisfies the model's constraints:

        * ``start >= history`` — the model's pre-history must correspond
          to *actual* sim values (the template reads them), so the first
          ``history`` ticks, where the sim CCA runs on its boot state,
          are out;
        * initial queue inside the box, and the outstanding data must
          fit the initial window (``A_0 <= S_{-1} + cwnd_0``);
        * no banked tokens at ``start`` — the shifted trace must obey a
          *fresh* token bucket (``S + W == cumulative capacity``), else
          the window could burst tokens the model never grants;
        * pre-history cwnds inside the sanity box and pre-history ack
          rate at most ``C`` (the model's ``S_pre >= -C*i`` bound).

        With all of these, the shifted window *is* a model trace (the
        eager-sender and template equalities transfer identically), so
        a violation on it refutes an SMT "verified" verdict.
        """
        cfg = self.cfg
        h = cfg.history
        if start < h:
            return False
        if self._buffer is not None:
            # lossy cell: the shifted trace is admissible with L ≡ 0
            # only while the queue stays within the drop-tail buffer —
            # beyond it the model *forces* drops the sim never took
            for t in range(start, start + cfg.T + 1):
                if result.A[t] - result.S[t] > self._buffer:
                    return False
        if result.A[start] - result.S[start] > cfg.initial_queue_max:
            return False
        if result.A[start] > result.S[start - 1] + result.cwnd[start]:
            return False
        cap = result.cap_cum[start] if result.cap_cum else cfg.C * start
        if result.S[start] + result.W[start] != cap:
            return False
        for i in range(1, h + 1):
            w = result.cwnd[start - i]
            if w < cfg.cwnd_min or w > cfg.initial_cwnd_max:
                return False
            if result.S[start] - result.S[start - i] > cfg.C * i:
                return False
        return True

    # -- whole trace ----------------------------------------------------------

    def evaluate_result(self, result) -> TraceVerdict:
        cfg = self.cfg
        windows = 0
        covered = 0
        margin: Optional[Fraction] = None      # over eligible windows
        margin_all: Optional[Fraction] = None  # fallback: every window
        witness: Optional[WindowReport] = None
        for start in range(0, result.ticks - cfg.T + 1):
            rep = self.window(result, start)
            windows += 1
            if rep.covered:
                covered += 1
            eligible = rep.covered or not self.covered_only
            if margin_all is None or rep.margin < margin_all:
                margin_all = rep.margin
            if eligible and (margin is None or rep.margin < margin):
                margin = rep.margin
            if eligible and not rep.holds and witness is None:
                witness = rep
        if margin is None:
            # no eligible window at all (trace shorter than T, or every
            # window left the model box): fall back so fitness still
            # orders individuals
            margin = margin_all if margin_all is not None else Fraction(1)
        return TraceVerdict(
            violated=witness is not None,
            margin=margin,
            witness=witness,
            windows=windows,
            covered_windows=covered,
        )

    def evaluate(self, cca, schedule: TraceSchedule) -> TraceVerdict:
        """Run ``cca`` on ``schedule`` and judge the trace."""
        return self.evaluate_result(run_schedule(cca, schedule))
