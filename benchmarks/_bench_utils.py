"""Shared constants/helpers for the benchmark suite.

All benchmarks run scaled-down instances by default so the whole suite
finishes on a laptop; set ``REPRO_FULL=1`` to run paper-scale parameters
(hours).  EXPERIMENTS.md records the mapping to the paper's numbers.

Set ``REPRO_BENCH_JSON=path/to/BENCH_obs.json`` to append one JSON
record per reported row to that trajectory file — each record carries
the row's result stats plus a full :mod:`repro.obs.metrics` snapshot,
so solver cost (conflicts, pivots, check time) can be attributed to
individual benchmark cells across runs.
"""

import json
import os
import time

from repro.obs import metrics

FULL = bool(os.environ.get("REPRO_FULL"))

#: trace length / history used by benches ("laptop" vs "paper" scale)
BENCH_T = 7 if FULL else 5
BENCH_H = 4 if FULL else 3
#: per-cell CEGIS budget in seconds (the paper used a week; DNF = budget hit)
CELL_BUDGET = 3600.0 if FULL else 120.0

#: trajectory file for metric snapshots (off unless the env var is set)
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON")


def record_snapshot(label: str, result=None, path=None) -> None:
    """Append one ``{label, time, result?, metrics}`` record to the
    ``BENCH_*.json`` trajectory (a JSONL file; no-op when unconfigured)."""
    path = path or BENCH_JSON
    if not path:
        return
    record = {"label": label, "t": time.time(), "metrics": metrics().snapshot()}
    if result is not None:
        record["result"] = {
            "iterations": getattr(result, "iterations", None),
            "counterexamples": getattr(result, "counterexamples", None),
            "wall_time": getattr(result, "wall_time", None),
            "found": getattr(result, "found", None),
            "timed_out": getattr(result, "timed_out", None),
            "exhausted": getattr(result, "exhausted", None),
        }
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, default=str) + "\n")


def fmt_row(label: str, result) -> str:
    """One Table-1-style row: method, iterations, time, status.  Also
    records the row into the ``BENCH_*.json`` trajectory when enabled."""
    record_snapshot(label, result)
    status = "ok" if result.found else ("DNF(budget)" if result.timed_out else "exhausted")
    return (
        f"{label:45s} iters={result.iterations:5d} "
        f"cex={result.counterexamples:5d} wall={result.wall_time:8.1f}s "
        f"[{status}]"
    )
