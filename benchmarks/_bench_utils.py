"""Shared constants/helpers for the benchmark suite.

All benchmarks run scaled-down instances by default so the whole suite
finishes on a laptop; set ``REPRO_FULL=1`` to run paper-scale parameters
(hours).  EXPERIMENTS.md records the mapping to the paper's numbers.
"""

import os

FULL = bool(os.environ.get("REPRO_FULL"))

#: trace length / history used by benches ("laptop" vs "paper" scale)
BENCH_T = 7 if FULL else 5
BENCH_H = 4 if FULL else 3
#: per-cell CEGIS budget in seconds (the paper used a week; DNF = budget hit)
CELL_BUDGET = 3600.0 if FULL else 120.0


def fmt_row(label: str, result) -> str:
    """One Table-1-style row: method, iterations, time, status."""
    status = "ok" if result.found else ("DNF(budget)" if result.timed_out else "exhausted")
    return (
        f"{label:45s} iters={result.iterations:5d} "
        f"cex={result.counterexamples:5d} wall={result.wall_time:8.1f}s "
        f"[{status}]"
    )
