"""A1/A3 ablations: each design choice isolated.

* A1: pruning mode and WCE on/off on the same space (Table 1's columns,
  here asserted pairwise per counterexample rather than end-to-end).
* A3: SMT generator vs enumerative generator on the same query — they are
  mathematically equivalent on finite domains; this measures the constant
  factors.
"""

import pytest

from repro.cegis import PruningMode
from repro.core import (
    CcacVerifier,
    EnumerativeGenerator,
    SMALL_DOMAIN,
    SmtGenerator,
    SynthesisQuery,
    TemplateSpec,
    constant_cwnd,
    synthesize,
)

from _bench_utils import BENCH_H, CELL_BUDGET, fmt_row


def _seed_trace(bench_cfg, worst_case):
    return CcacVerifier(bench_cfg).find_counterexample(
        constant_cwnd(1, BENCH_H), worst_case=worst_case
    ).counterexample


def test_range_pruning_eliminates_more(benchmark, bench_cfg):
    """A1: per-counterexample pruning power, exact vs range."""
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)
    trace = _seed_trace(bench_cfg, worst_case=False)

    def run():
        out = {}
        for mode in (PruningMode.EXACT, PruningMode.RANGE):
            gen = EnumerativeGenerator(spec, bench_cfg, mode)
            gen.add_counterexample(trace)
            out[mode] = spec.search_space_size - gen.survivor_count
        return out

    eliminated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"eliminated by one cex: exact={eliminated[PruningMode.EXACT]} "
          f"range={eliminated[PruningMode.RANGE]} "
          f"(space {spec.search_space_size})")
    assert eliminated[PruningMode.RANGE] >= eliminated[PruningMode.EXACT]


def test_wce_widens_pruned_range(benchmark, bench_cfg):
    """A1: the WCE trace eliminates at least as many candidates as a
    plain trace under range pruning."""
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)

    def run():
        out = {}
        for wce in (False, True):
            trace = _seed_trace(bench_cfg, worst_case=wce)
            gen = EnumerativeGenerator(spec, bench_cfg, PruningMode.RANGE)
            gen.add_counterexample(trace)
            out[wce] = spec.search_space_size - gen.survivor_count
        return out

    eliminated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"eliminated: plain={eliminated[False]} wce={eliminated[True]}")
    # the WCE objective maximizes the *range width*, which is a proxy;
    # allow slack but require it not to collapse
    assert eliminated[True] * 2 >= eliminated[False]


@pytest.mark.parametrize("backend", ["enum", "smt"])
def test_generator_backends(benchmark, backend, bench_cfg):
    """A3: same query, both generator implementations."""
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)

    def run():
        query = SynthesisQuery(
            spec=spec, cfg=bench_cfg, generator=backend,
            worst_case_cex=True, time_budget=CELL_BUDGET,
        )
        return synthesize(query)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(fmt_row(f"generator={backend}", result))
    assert result.found or result.timed_out
    if result.found:
        # both backends must return a genuinely verified rule
        assert CcacVerifier(bench_cfg).verify(result.first)
