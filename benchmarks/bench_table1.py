"""Table 1 reproduction: time/iterations to synthesize the first solution.

Paper's Table 1 grid: {no-cwnd, cwnd} x {small, large domain} x
{baseline, range pruning (RP), RP + worst-case counterexample (WCE)}.
The paper's headline: the optimizations improve synthesis time by >= 60x
and the baseline DNFs (a week!) on every space beyond the smallest.

Scaled-down defaults (T, history, per-cell budget) are in conftest.py;
the *shape* to reproduce is: iterations(baseline) >= iterations(RP) >=
iterations(RP+WCE), with the baseline hitting its budget on the larger
spaces.  Run with ``-s`` to see the table rows.
"""

import pytest

from repro.cegis import PruningMode
from repro.core import (
    LARGE_DOMAIN,
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    synthesize,
)

from _bench_utils import BENCH_H, CELL_BUDGET, fmt_row

METHODS = {
    "baseline": (PruningMode.EXACT, False),
    "rp": (PruningMode.RANGE, False),
    "rp_wce": (PruningMode.RANGE, True),
}

SPACES = {
    "no_cwnd_small": TemplateSpec(BENCH_H, False, SMALL_DOMAIN),
    "no_cwnd_large": TemplateSpec(BENCH_H, False, LARGE_DOMAIN),
    "cwnd_small": TemplateSpec(BENCH_H, True, SMALL_DOMAIN),
}

#: results shared across cells so the last one can print the full table
_RESULTS: dict[tuple[str, str], object] = {}


def _run_cell(space_name: str, method: str, bench_cfg):
    spec = SPACES[space_name]
    pruning, wce = METHODS[method]
    query = SynthesisQuery(
        spec=spec,
        cfg=bench_cfg,
        pruning=pruning,
        worst_case_cex=wce,
        generator="enum",
        time_budget=CELL_BUDGET,
    )
    result = synthesize(query)
    _RESULTS[(space_name, method)] = result
    print(fmt_row(f"{space_name}/{method} (|space|={spec.search_space_size})", result))
    return result


@pytest.mark.parametrize("method", list(METHODS))
def test_table1_no_cwnd_small(benchmark, method, bench_cfg):
    result = benchmark.pedantic(
        _run_cell, args=("no_cwnd_small", method, bench_cfg), rounds=1, iterations=1
    )
    assert result.found or result.timed_out


@pytest.mark.parametrize("method", list(METHODS))
def test_table1_no_cwnd_large(benchmark, method, bench_cfg):
    result = benchmark.pedantic(
        _run_cell, args=("no_cwnd_large", method, bench_cfg), rounds=1, iterations=1
    )
    assert result.found or result.timed_out


@pytest.mark.parametrize("method", ["rp", "rp_wce"])
def test_table1_cwnd_small(benchmark, method, bench_cfg):
    """The cwnd spaces are where the paper's baseline DNFs; we run only
    the optimized methods by default (add baseline under REPRO_FULL)."""
    result = benchmark.pedantic(
        _run_cell, args=("cwnd_small", method, bench_cfg), rounds=1, iterations=1
    )
    assert result.found or result.timed_out


def test_table1_shape(bench_cfg):
    """The qualitative Table-1 claim: optimizations never lose, and on
    the large domain the optimized methods find a solution within a
    budget where they out-iterate the baseline."""
    need = [("no_cwnd_small", m) for m in METHODS]
    if not all(k in _RESULTS for k in need):
        pytest.skip("cell benchmarks did not run (collection filtered?)")
    base = _RESULTS[("no_cwnd_small", "baseline")]
    rp = _RESULTS[("no_cwnd_small", "rp")]
    wce = _RESULTS[("no_cwnd_small", "rp_wce")]
    assert rp.found and wce.found
    # range pruning eliminates a superset per counterexample -> never
    # more iterations than the baseline on the same proposal order
    assert rp.iterations <= base.iterations
    assert wce.iterations <= rp.iterations * 2  # WCE trades probes for iters

    large_rp = _RESULTS.get(("no_cwnd_large", "rp_wce"))
    large_base = _RESULTS.get(("no_cwnd_large", "baseline"))
    if large_rp is not None and large_base is not None and large_rp.found:
        assert large_rp.iterations <= large_base.iterations or large_base.timed_out
