"""A4 ablation: sensitivity of verifier verdicts and cost to trace length.

The encoding is finite-trace; the paper (via CCAC) argues the induction-
friendly property makes short traces meaningful.  This bench measures how
verifier time scales with T and checks the key verdicts are stable across
odd trace lengths.

(Even T admits degenerate 'exactly 50%' adversary schedules — the
utilization threshold is >= — so the canonical configurations use odd T;
this bench documents that boundary behaviour too.)
"""

import pytest

from repro.ccac import ModelConfig
from repro.core import CcacVerifier, constant_cwnd, rocc


@pytest.mark.parametrize("T", [5, 7, 9])
def test_verifier_scaling_rocc(benchmark, T):
    cfg = ModelConfig(T=T, history=3)
    verifier = CcacVerifier(cfg)

    def run():
        return verifier.find_counterexample(rocc(3))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"T={T}: rocc verified={result.verified} in {result.wall_time:.2f}s")
    assert result.verified


@pytest.mark.parametrize("T", [5, 7, 9])
def test_verifier_scaling_const1(benchmark, T):
    cfg = ModelConfig(T=T, history=3)
    verifier = CcacVerifier(cfg)

    def run():
        return verifier.find_counterexample(constant_cwnd(1, 3))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"T={T}: const-1 verified={result.verified} in {result.wall_time:.2f}s")
    assert not result.verified
