"""Benchmarks for the paper-sketched extensions (§4.1, §5).

Not tied to a specific table — these regenerate the qualitative results of
the extensions: conditional-template verdicts, two-flow starvation under
scheduling assumptions, and verifier tuning over a heuristic panel.
"""

from fractions import Fraction

import pytest

from repro.ccac import StarvationVerifier
from repro.core import (
    ConditionalVerifier,
    aimd_candidate,
    constant_cwnd,
    rocc,
    rocc_conditional,
    total_waste_budget,
    tune_verifier,
)

from _bench_utils import BENCH_H


def test_conditional_aimd_refuted(benchmark, bench_cfg):
    verifier = ConditionalVerifier(bench_cfg)

    def run():
        return verifier.find_counterexample(aimd_candidate())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.verified
    print(f"AIMD refuted: util={float(result.counterexample.utilization()):.2f}")


def test_conditional_rocc_verified(benchmark, bench_cfg):
    verifier = ConditionalVerifier(bench_cfg)

    def run():
        return verifier.verify(rocc_conditional())

    assert benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("share,expect_verified", [
    (Fraction(0), False),
    (Fraction(1, 2), True),
])
def test_starvation_vs_scheduler_share(benchmark, bench_cfg, share, expect_verified):
    verifier = StarvationVerifier(bench_cfg, min_share=share)
    cand = rocc(BENCH_H)

    def run():
        return verifier.find_starvation(cand, phi=Fraction(1, 4))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"min_share={share}: starvation-free={result.verified}")
    assert result.verified == expect_verified


def test_verifier_tuning_panel(benchmark, bench_cfg):
    template = total_waste_budget(bench_cfg)
    panel = [rocc(BENCH_H), constant_cwnd(1, BENCH_H)]

    def run():
        return tune_verifier(panel, bench_cfg, template)

    tuned = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tuned.found
    print(f"tuned environment: {tuned.describe()} ({tuned.probes} probes)")


def test_lossy_buffer_sizing(benchmark, bench_cfg):
    """Finite-buffer extension: formally size the buffer RoCC needs."""
    from repro.ccac import minimum_buffer

    def run():
        return minimum_buffer(rocc(BENCH_H), bench_cfg)

    mb = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mb is not None
    print(f"minimum verified buffer for RoCC: {mb} C*D")


def test_lossy_verdicts(benchmark, bench_cfg):
    """RoCC fails under-provisioned buffers and survives adequate ones."""
    from fractions import Fraction as F

    from repro.ccac import LossyVerifier

    def run():
        small = LossyVerifier(bench_cfg, F(1)).verify(rocc(BENCH_H))
        large = LossyVerifier(bench_cfg, F(8)).verify(rocc(BENCH_H))
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not small and large


def test_scheduling_graham_bound(benchmark):
    """§5 scheduling domain: prove Graham's bound, refute below it."""
    from fractions import Fraction as F

    from repro.sched import SchedulingConfig, SchedulingVerifier

    cfg = SchedulingConfig(n_jobs=4, n_machines=2)
    verifier = SchedulingVerifier(cfg)

    def run():
        proved = verifier.verify_ratio(cfg.graham_ratio).verified
        refuted = verifier.verify_ratio(F(13, 10))
        return proved, refuted

    proved, refuted = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proved and not refuted.verified
    print(f"Graham {cfg.graham_ratio} proved; rho=13/10 witness ratio="
          f"{refuted.witness.ratio}")
