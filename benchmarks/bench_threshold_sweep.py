"""R3/R4 reproduction: solution counts vs utilization/delay thresholds.

Paper (in-text, 9^5 space): at delay <= 4 RTT, raising the utilization
floor 50% -> 65% -> 70% shrinks the solution set 12 -> 2 -> 1; at util >=
50%, relaxing delay to 8 RTT explodes it to 245, tightening to 3.6 RTT
gives 9 and to 3 RTT gives 0.

The scaled-down run sweeps the same two axes on the small space; the
shape to reproduce is *monotonicity*: counts shrink as either threshold
tightens, reaching zero for infeasible combinations.
"""

from fractions import Fraction

import pytest

from repro.core import (
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    enumerate_all,
)

from _bench_utils import BENCH_H, CELL_BUDGET

UTIL_POINTS = [Fraction(1, 2), Fraction(13, 20), Fraction(7, 10)]
DELAY_POINTS = [Fraction(8), Fraction(4), Fraction(3)]

_COUNTS: dict[str, list[tuple[Fraction, int]]] = {"util": [], "delay": []}


def _count(bench_cfg, util=None, delay=None) -> int:
    cfg = bench_cfg.with_thresholds(util=util, delay=delay)
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)
    query = SynthesisQuery(
        spec=spec, cfg=cfg, generator="enum", worst_case_cex=True,
        time_budget=CELL_BUDGET,
    )
    result = enumerate_all(query)
    return len(result.solutions)


def test_utilization_sweep(benchmark, bench_cfg):
    """Count solutions at each utilization floor (delay fixed at 4 RTT)."""

    def run():
        counts = []
        for u in UTIL_POINTS:
            n = _count(bench_cfg, util=u)
            counts.append((u, n))
            print(f"util >= {u}: {n} solutions")
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    _COUNTS["util"] = counts
    ns = [n for _u, n in counts]
    # R3 shape: monotone shrink as the floor rises
    assert ns == sorted(ns, reverse=True)


def test_delay_sweep(benchmark, bench_cfg):
    """Count solutions at each delay bound (util fixed at 50%)."""

    def run():
        counts = []
        for d in DELAY_POINTS:
            n = _count(bench_cfg, delay=d)
            counts.append((d, n))
            print(f"delay <= {d} RTT: {n} solutions")
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    _COUNTS["delay"] = counts
    ns = [n for _d, n in counts]
    # R4 shape: monotone shrink as the bound tightens
    assert ns == sorted(ns, reverse=True)


def test_infeasible_extreme_has_no_solutions(bench_cfg):
    """R4's endpoint: a tight-enough delay bound leaves nothing.  A
    sub-BDP in-flight cap cannot coexist with 50% utilization under
    1-RTT jitter."""
    n = _count(bench_cfg, delay=Fraction(1, 2))
    print(f"delay <= 1/2 RTT: {n} solutions")
    assert n == 0
