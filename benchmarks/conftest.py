"""Benchmark fixtures (shared constants live in _bench_utils.py)."""

import pytest

from repro.ccac import ModelConfig

from _bench_utils import BENCH_H, BENCH_T, record_snapshot


@pytest.fixture(scope="session")
def bench_cfg() -> ModelConfig:
    return ModelConfig(T=BENCH_T, history=BENCH_H)


def pytest_sessionfinish(session, exitstatus):
    # final cumulative metrics snapshot for the BENCH_*.json trajectory
    record_snapshot("session_end")
