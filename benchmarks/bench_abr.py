"""A2 (paper §5): the ABR verifier built on the CCAC environment.

Measures verification and threshold-synthesis cost and checks the
qualitative results: the greedy policy is refuted, the synthesized
threshold is proved stall-free.
"""

from fractions import Fraction

import pytest

from repro.abr import AbrConfig, AbrPolicy, AbrVerifier, synthesize_threshold


@pytest.fixture(scope="module")
def abr_cfg():
    return AbrConfig(n_chunks=6, startup_delay=2,
                     size_low=Fraction(1, 2), size_high=Fraction(3, 2))


def test_abr_refute_greedy(benchmark, abr_cfg):
    verifier = AbrVerifier(abr_cfg)

    def run():
        return verifier.find_counterexample(AbrPolicy(Fraction(0)))

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    assert trace is not None and trace.stalled_chunk is not None
    print(f"greedy ABR stalls at chunk {trace.stalled_chunk}")


def test_abr_verify_conservative(benchmark, abr_cfg):
    verifier = AbrVerifier(abr_cfg)

    def run():
        return verifier.verify(AbrPolicy(Fraction(100)))

    assert benchmark.pedantic(run, rounds=2, iterations=1)


def test_abr_threshold_synthesis(benchmark, abr_cfg):
    def run():
        return synthesize_threshold(abr_cfg)

    policy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert policy is not None
    print(f"synthesized ABR policy: {policy.describe()}")
    assert AbrVerifier(abr_cfg).verify(policy)
