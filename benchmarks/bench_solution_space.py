"""R1/R2 reproduction: the solution space at the default thresholds.

Paper (in-text): RoCC is rediscovered; enumerating *all* solutions in the
no-cwnd space yields only RoCC variants — telescoping ack differences
split between rules using 2 and 3 RTTs of history (6 and 6 in the paper's
9^5 space).

The scaled-down run enumerates the full small-domain space exhaustively
(CEGIS-all, which is provably exhaustive) and checks the shape: every
solution is shift-invariant (beta sum = 0) and the RoCC rule itself is in
the set when it fits the space.
"""

import pytest

from repro.core import (
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    enumerate_all,
    history_histogram,
    is_shift_invariant,
    rocc,
    summarize,
)

from _bench_utils import BENCH_H, CELL_BUDGET, fmt_row


def _enumerate(bench_cfg):
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)
    query = SynthesisQuery(
        spec=spec, cfg=bench_cfg, generator="enum",
        worst_case_cex=True, time_budget=CELL_BUDGET,
    )
    return enumerate_all(query)


def test_enumerate_all_small_space(benchmark, bench_cfg):
    result = benchmark.pedantic(_enumerate, args=(bench_cfg,), rounds=1, iterations=1)
    print(fmt_row("enumerate-all no_cwnd_small", result))
    assert result.exhausted or result.timed_out
    reports = summarize(result.solutions, bench_cfg)
    for r in reports:
        print(f"  {r.rule:45s} rocc_family={r.rocc_family} "
              f"history={r.history_used} steady_cwnd={r.steady_cwnd}")
    print(f"  history histogram: {history_histogram(result.solutions)}")

    # R1: the RoCC rule is rediscovered when it is inside the space
    keys = {c.key() for c in result.solutions}
    if BENCH_H >= 3 and result.exhausted:
        assert rocc(BENCH_H).key() in keys

    # R2 shape: every solution is a telescoping ack-difference rule
    for cand in result.solutions:
        assert is_shift_invariant(cand), f"non-telescoping solution {cand.pretty()}"
