"""R5 reproduction: verifier cost per call.

Paper: "The complexity of verifier formulation is fixed across iterations,
unlike the generator that gets more constraints in each iteration.  The
verifier typically takes ~0.5s to compute a counterexample."

We benchmark single verifier calls for refuted and verified candidates
and check the refuted (SAT) calls stay within the same order of
magnitude regardless of which candidate is queried.
"""

import pytest

from repro.core import CcacVerifier, constant_cwnd, rocc

from _bench_utils import BENCH_H


def test_verifier_refuted_call(benchmark, bench_cfg):
    """Time to produce one counterexample (SAT verdict)."""
    verifier = CcacVerifier(bench_cfg)
    cand = constant_cwnd(1, BENCH_H)

    def run():
        return verifier.find_counterexample(cand)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.verified


def test_verifier_verified_call(benchmark, bench_cfg):
    """Time to prove a candidate (UNSAT verdict, the expensive case)."""
    verifier = CcacVerifier(bench_cfg)
    cand = rocc(BENCH_H)

    def run():
        return verifier.find_counterexample(cand)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.verified


def test_verifier_wce_call(benchmark, bench_cfg):
    """Worst-case-counterexample call: several verifier solves (binary
    search) — the paper's trade: more verifier time, fewer iterations."""
    verifier = CcacVerifier(bench_cfg)
    cand = constant_cwnd(1, BENCH_H)

    def run():
        return verifier.find_counterexample(cand, worst_case=True)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert not result.verified


def test_verifier_cost_constant_across_candidates(bench_cfg):
    """The verifier's per-call cost must not grow with the number of
    candidates tried (it has no accumulating state)."""
    import time

    verifier = CcacVerifier(bench_cfg)
    cands = [constant_cwnd(g, BENCH_H) for g in (0, 1, 2)] * 3
    times = []
    for cand in cands:
        t0 = time.perf_counter()
        verifier.find_counterexample(cand)
        times.append(time.perf_counter() - t0)
    early = sum(times[:3]) / 3
    late = sum(times[-3:]) / 3
    assert late <= early * 5  # no systematic growth
    print(f"verifier per-call: early={early:.3f}s late={late:.3f}s")
