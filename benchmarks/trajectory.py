"""Benchmark trajectory maintenance: fold engine_bench runs into history.

``BENCH_engine.json`` is a committed, append-only history of
``engine_bench`` runs (see :mod:`repro.obs.trajectory`).  This wrapper
appends a single-run report to it and shows the recorded trajectory::

    PYTHONPATH=src python benchmarks/trajectory.py append report.json \
        [--history BENCH_engine.json] [--git-sha SHA]
    PYTHONPATH=src python benchmarks/trajectory.py show \
        [--history BENCH_engine.json]

``append`` is what CI (and ``engine_bench --append-history``) uses after
a bench run; ``show`` renders the history as one line per entry so a
reviewer can eyeball the trend without opening the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.trajectory import (  # noqa: E402
    TRACKED_TIMINGS,
    append_entry,
    load_history,
)


def cmd_append(args) -> int:
    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"cannot read report {args.report!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(report, dict) or "bench" not in report:
        print(f"{args.report!r} does not look like a bench report",
              file=sys.stderr)
        return 2
    entry = append_entry(args.history, report, git_sha=args.git_sha)
    print(f"appended {entry['git_sha']} "
          f"({'quick' if entry['quick'] else 'full'}, "
          f"{len(entry['metrics'])} metrics, ok={entry['ok']}) "
          f"to {args.history}")
    return 0


def cmd_show(args) -> int:
    try:
        trajectory = load_history(args.history)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    history = trajectory.get("history", [])
    if not history:
        print(f"{args.history}: empty trajectory")
        return 0
    print(f"{args.history}: {len(history)} entries "
          f"(bench={trajectory.get('bench', '?')})")
    shown = [t for t in TRACKED_TIMINGS
             if any(t in e.get("metrics", {}) for e in history)]
    for entry in history:
        metrics = entry.get("metrics", {})
        cells = " ".join(
            f"{t.split('.', 1)[1]}={metrics[t]:g}s"
            for t in shown if t in metrics
        )
        print(f"  {entry.get('ts') or '-':>20}  {entry.get('git_sha', '?'):>14}  "
              f"{'quick' if entry.get('quick') else 'full ':<5} "
              f"ok={str(entry.get('ok')):<5} {cells}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="fold a bench report into the history")
    p_append.add_argument("report", help="single-run engine_bench JSON report")
    p_append.add_argument("--history", default="BENCH_engine.json",
                          help="trajectory file (default: %(default)s)")
    p_append.add_argument("--git-sha", default=None,
                          help="override the recorded sha (default: HEAD)")
    p_append.set_defaults(func=cmd_append)

    p_show = sub.add_parser("show", help="render the history, one line per entry")
    p_show.add_argument("--history", default="BENCH_engine.json",
                        help="trajectory file (default: %(default)s)")
    p_show.set_defaults(func=cmd_show)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
