"""R6 reproduction: CEGIS vs brute-force enumeration.

Paper: brute force costs ~verifier_time x |space| (about 120s on 3^5);
the unoptimized CEGIS baseline is *slower* than brute force there (180s,
generator overhead), while the 9^9 space would need >6 core-years brute
force yet RP+WCE solves it in 45 minutes.

The scaled-down run measures brute force and CEGIS (RP+WCE) on the small
space, checks the extrapolation arithmetic for the big spaces, and
asserts the qualitative claim that optimized CEGIS needs far fewer
verifier calls than brute force on the large domain.
"""

import pytest

from repro.core import (
    LARGE_DOMAIN,
    SMALL_DOMAIN,
    SynthesisQuery,
    TemplateSpec,
    brute_force,
    synthesize,
)

from _bench_utils import BENCH_H, CELL_BUDGET, fmt_row


def test_brute_force_small_space(benchmark, bench_cfg):
    spec = TemplateSpec(BENCH_H, False, SMALL_DOMAIN)

    def run():
        return brute_force(spec, bench_cfg, stop_at_first=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(fmt_row("brute-force no_cwnd_small", result))
    assert result.found
    per_call = result.verifier_time / max(result.iterations, 1)
    print(f"per-verifier-call: {per_call:.2f}s")
    for name, size in [("9^5", 9**5), ("3^9", 3**9), ("9^9", 9**9)]:
        est = per_call * size
        print(f"extrapolated brute force over {name}: {est/3600:.1f} core-hours")
    # the 9^9 extrapolation must be astronomically worse than a CEGIS
    # budget — the paper's '6 core-years vs 45 minutes' contrast
    assert per_call * 9**9 > 100 * CELL_BUDGET


def test_cegis_beats_brute_force_on_large_domain(benchmark, bench_cfg):
    """On the large domain, optimized CEGIS must issue far fewer verifier
    calls than the space size brute force would require."""
    spec = TemplateSpec(BENCH_H, False, LARGE_DOMAIN)

    def run():
        query = SynthesisQuery(
            spec=spec, cfg=bench_cfg, generator="enum",
            worst_case_cex=True, time_budget=CELL_BUDGET,
        )
        return synthesize(query)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(fmt_row("cegis rp+wce no_cwnd_large", result))
    if result.found:
        assert result.iterations < spec.search_space_size / 10
