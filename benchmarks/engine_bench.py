"""Engine benchmark: the three performance multipliers, measured.

Runs three workloads against :mod:`repro.engine` and writes a single
``BENCH_engine.json`` with the numbers:

1. **compile** — the staged compile pipeline vs the raw encode path on
   the per-candidate verification queries: clause/atom counts before and
   after, solve-time deltas, and verdict parity.  Gates on a >= 25%
   median clause-count reduction, a wall-clock win, and zero verdict
   divergence.
2. **cache** — a repeated-query workload (the same verification queries
   issued twice through a content-addressed :class:`QueryCache`); the
   warm pass must be at least 2x faster than the cold pass.
3. **incremental** — the same candidate set verified by a fresh-solver
   verifier and an incremental-session verifier
   (``CcacVerifier(incremental=True)``); the verdicts must be identical
   candidate by candidate.
4. **portfolio** — one synthesis query run with ``jobs=1`` and
   ``jobs=4``; the verdicts (found / exhausted) must be identical.
5. **service** — the same batch-verification workload dispatched
   through a persistent :class:`repro.service.WorkerPool` (fork once,
   warm incremental verifiers) vs ``run_portfolio`` (fork per batch);
   the pooled path must be >= 1.3x faster end to end, pool start/stop
   included, with identical verdicts batch by batch.
6. **matrix** — the candidates x environments verification grid
   (lossless + finite-buffer lossy) over repeated rounds: pooled
   dispatch with per-environment warm verifiers vs fork-per-cell;
   per-cell verdict parity required and the pooled grid must be
   >= 1.3x faster.
7. **resilience** — the same job set pushed through a real
   :class:`repro.service.JobServer` with ``executors=1`` vs
   ``executors=4``: result fingerprints must be pairwise identical and
   the concurrent side >= 1.5x faster on multi-core hosts (>= 0.8x —
   no-collapse — on single-core runners, where CPU-bound work cannot
   overlap regardless of dispatch).

Usage::

    PYTHONPATH=src python benchmarks/engine_bench.py [--quick] [--out PATH]
                                                     [--no-compile-pipeline]
                                                     [--append-history PATH]

``--quick`` scales the workloads down for CI smoke runs (~1 minute);
the default is laptop scale.  ``--no-compile-pipeline`` runs the cache /
incremental / portfolio workloads over the raw encode path (CI uploads
both reports side by side); the compile workload always measures both
paths explicitly.  Exit status is non-zero when any equivalence or
speedup assertion fails, so CI can gate on it.

``--out`` refuses to overwrite a committed *trajectory* file (a
``{"history": [...]}`` document; see :mod:`repro.obs.trajectory`) —
write the single-run report elsewhere and fold it into the history with
``--append-history BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from fractions import Fraction  # noqa: E402
from statistics import median  # noqa: E402

from repro.ccac import CcacModel, ModelConfig, negated_desired  # noqa: E402
from repro.core import (  # noqa: E402
    SynthesisQuery,
    constant_cwnd,
    rocc,
    table1_spaces,
)
from repro.core.verifier import CcacVerifier  # noqa: E402
from repro.engine import QueryCache  # noqa: E402
from repro.runtime import RuntimeOptions, run_synthesis  # noqa: E402
from repro.smt import Solver, compile_query, set_pipeline_enabled  # noqa: E402
from repro.smt.cnf import TseitinEncoder  # noqa: E402
from repro.smt.compile import ENV_FLAG, _SatSink, _TheorySink  # noqa: E402
from repro.smt.preprocess import preprocess  # noqa: E402


def _candidates(history: int, n: int) -> list:
    """A mixed bag of refuted and verified candidates."""
    cands = [rocc(history)]
    for g in range(n - 1):
        cands.append(constant_cwnd(Fraction(g), history))
    return cands[:n]


def _raw_cnf_size(formulas) -> tuple[int, int]:
    """(clauses, theory atoms) of the legacy encode path: preprocess
    straight into Tseitin, no pipeline."""
    sat_sink, theory_sink = _SatSink(), _TheorySink()
    encoder = TseitinEncoder(sat_sink, theory_sink)
    for f in formulas:
        encoder.assert_formula(preprocess(f))
    return len(sat_sink.clauses), len(theory_sink.atoms)


def bench_compile(cfg: ModelConfig, candidates: list) -> dict:
    """Pipeline vs raw on the per-candidate verification queries."""
    net = CcacModel(cfg, prefix="v")
    base = list(net.constraints()) + [negated_desired(net)]

    rows = []
    reductions = []
    divergences = 0
    pipeline_s = 0.0
    raw_s = 0.0
    for cand in candidates:
        formulas = base + list(cand.constraints_for(net))

        raw_clauses, raw_atoms = _raw_cnf_size(formulas)
        compiled = compile_query(tuple(formulas))
        cnf = compiled.cnf()
        reduction = (
            (raw_clauses - len(cnf.clauses)) / raw_clauses if raw_clauses else 0.0
        )
        reductions.append(reduction)

        t0 = time.perf_counter()
        s_pipe = Solver(compile_pipeline=True)
        s_pipe.add(*formulas)
        v_pipe = s_pipe.check()
        pipe_t = time.perf_counter() - t0

        t0 = time.perf_counter()
        s_raw = Solver(compile_pipeline=False)
        s_raw.add(*formulas)
        v_raw = s_raw.check()
        raw_t = time.perf_counter() - t0

        pipeline_s += pipe_t
        raw_s += raw_t
        if v_pipe is not v_raw:
            divergences += 1
        rows.append({
            "candidate": str(cand),
            "clauses_raw": raw_clauses,
            "clauses_compiled": len(cnf.clauses),
            "atoms_raw": raw_atoms,
            "atoms_compiled": len(cnf.atoms),
            "clause_reduction": round(reduction, 4),
            "vars_eliminated": compiled.stats.vars_eliminated,
            "verdict_raw": v_raw.value,
            "verdict_compiled": v_pipe.value,
            "solve_raw_s": round(raw_t, 4),
            "solve_compiled_s": round(pipe_t, 4),
        })

    med = median(reductions) if reductions else 0.0
    speedup = raw_s / pipeline_s if pipeline_s > 0 else float("inf")
    return {
        "queries": len(candidates),
        "median_clause_reduction": round(med, 4),
        "raw_s": round(raw_s, 4),
        "pipeline_s": round(pipeline_s, 4),
        "speedup": round(speedup, 2),
        "verdict_divergences": divergences,
        "per_query": rows,
        # gates: >= 25% median clause reduction, a wall-clock win, and
        # verdict parity on every query
        "ok": med >= 0.25 and speedup >= 1.0 and divergences == 0,
    }


def bench_cache(cfg: ModelConfig, candidates: list) -> dict:
    """Repeated-query workload: cold pass populates, warm pass hits."""
    cache = QueryCache()
    verifier = CcacVerifier(cfg, cache=cache)

    t0 = time.perf_counter()
    cold = [verifier.find_counterexample(c).verified for c in candidates]
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = [verifier.find_counterexample(c).verified for c in candidates]
    warm_s = time.perf_counter() - t0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "queries": len(candidates),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "verdicts_identical": cold == warm,
        "cache": cache.stats(),
        "ok": cold == warm and speedup >= 2.0,
    }


def bench_incremental(cfg: ModelConfig, candidates: list) -> dict:
    """Fresh-solver vs incremental-session verdict equivalence + timing."""
    fresh = CcacVerifier(cfg)
    t0 = time.perf_counter()
    fresh_verdicts = [fresh.find_counterexample(c).verified for c in candidates]
    fresh_s = time.perf_counter() - t0

    inc = CcacVerifier(cfg, incremental=True)
    t0 = time.perf_counter()
    inc_verdicts = [inc.find_counterexample(c).verified for c in candidates]
    inc_s = time.perf_counter() - t0

    return {
        "queries": len(candidates),
        "fresh_s": round(fresh_s, 4),
        "incremental_s": round(inc_s, 4),
        "speedup": round(fresh_s / inc_s, 2) if inc_s > 0 else float("inf"),
        "verdicts_identical": fresh_verdicts == inc_verdicts,
        "session": inc._session.stats.as_dict() if inc._session else None,
        "ok": fresh_verdicts == inc_verdicts,
    }


def bench_proof(cfg: ModelConfig, candidates: list) -> dict:
    """Proof-mode overhead: the same verification workload with and
    without certified UNSAT verdicts (DRAT + Farkas production plus the
    independent check; see :mod:`repro.trust`).  Gates on identical
    verdicts, every verified verdict certified, and <= 2.5x overhead."""
    plain = CcacVerifier(cfg)
    t0 = time.perf_counter()
    plain_verdicts = [plain.find_counterexample(c).verified for c in candidates]
    plain_s = time.perf_counter() - t0

    certified = CcacVerifier(cfg, certify=True)
    t0 = time.perf_counter()
    results = [certified.find_counterexample(c) for c in candidates]
    certify_s = time.perf_counter() - t0
    certify_verdicts = [r.verified for r in results]

    all_certified = all(r.certified for r in results if r.verified)
    proof_steps = [r.certificate.steps for r in results if r.certified]
    check_s = sum(r.certificate.check_time for r in results if r.certified)
    overhead = certify_s / plain_s if plain_s > 0 else float("inf")
    return {
        "queries": len(candidates),
        "plain_s": round(plain_s, 4),
        "certify_s": round(certify_s, 4),
        "overhead": round(overhead, 2),
        "check_s": round(check_s, 4),
        "verified": sum(plain_verdicts),
        "certified": certified.certified,
        "proof_steps": proof_steps,
        "verdicts_identical": plain_verdicts == certify_verdicts,
        # gates: verdict parity, no uncertified "verified", bounded cost
        "ok": (
            plain_verdicts == certify_verdicts
            and all_certified
            and overhead <= 2.5
        ),
    }


def bench_portfolio(cfg: ModelConfig, budget: float) -> dict:
    """jobs=1 vs jobs=4 on one synthesis query: identical verdicts."""
    spec = table1_spaces()["no_cwnd_small"]
    # the Table 1 space fixes its own history; pair it with a config of
    # the same trace length but default history
    cfg = ModelConfig(T=cfg.T)
    rows = {}
    for jobs in (1, 4):
        query = SynthesisQuery(
            spec=spec,
            cfg=cfg,
            generator="enum",
            worst_case_cex=False,
            time_budget=budget,
            jobs=jobs,
        )
        t0 = time.perf_counter()
        result = run_synthesis(query, RuntimeOptions(degrade=False))
        rows[jobs] = {
            "found": result.found,
            "exhausted": result.exhausted,
            "timed_out": result.timed_out,
            "iterations": result.iterations,
            "wall_s": round(time.perf_counter() - t0, 4),
        }
    identical = (
        rows[1]["found"] == rows[4]["found"]
        and rows[1]["exhausted"] == rows[4]["exhausted"]
    )
    return {
        "jobs_1": rows[1],
        "jobs_4": rows[4],
        "verdicts_identical": identical,
        "ok": identical,
    }


def bench_matrix(cfg: ModelConfig, candidates: list, rounds: int) -> dict:
    """The candidates x environments grid, dispatched the two ways a
    multi-environment synthesis loop can run it.

    Each CEGIS round re-verifies a fresh batch of candidates against the
    *same* environment set, so the dispatch question is amortization:
    fork-per-cell pays a fresh base-network encode for every cell of
    every round, while the pooled path keys its warm incremental
    verifiers per environment (`_WORKER_STATE`) and pays each cell's
    encode once per worker for the whole run.  Per-cell verdicts must be
    identical and the pooled grid must be >= 1.3x faster end to end,
    pool start/stop included.
    """
    from repro.ccac import lossless_environment, lossy_environment
    from repro.engine.portfolio import (
        _pooled_verify_candidate_task,
        _verify_candidate_task,
        run_portfolio,
    )
    from repro.service import WorkerPool

    environments = [lossless_environment(), lossy_environment(buffer=8)]
    precision = Fraction(1, 8)
    cells = [(cand, env) for cand in candidates for env in environments]

    def _tasks(fn):
        return [
            (fn, (cfg, precision, cand, False, None, True, None, False,
                  [env]))
            for cand, env in cells
        ]

    def _verdicts(outcome):
        return [
            bool(outcome.reports[i].result.verified)
            for i in range(len(cells))
        ]

    wait_all = {"accept": lambda _r: False, "wall_time": 300.0}

    forked_verdicts = []
    t0 = time.perf_counter()
    for _ in range(rounds):
        outcome = run_portfolio(_tasks(_verify_candidate_task), **wait_all)
        forked_verdicts.append(_verdicts(outcome))
    forked_s = time.perf_counter() - t0

    pooled_verdicts = []
    t0 = time.perf_counter()
    with WorkerPool(size=2) as pool:
        for _ in range(rounds):
            outcome = pool.run_batch(
                _tasks(_pooled_verify_candidate_task), **wait_all
            )
            pooled_verdicts.append(_verdicts(outcome))
    pooled_s = time.perf_counter() - t0

    speedup = forked_s / pooled_s if pooled_s > 0 else float("inf")
    return {
        "rounds": rounds,
        "cells": len(cells),
        "environments": [env.key() for env in environments],
        "forked_s": round(forked_s, 4),
        "pooled_s": round(pooled_s, 4),
        "speedup": round(speedup, 2),
        "verdicts_identical": forked_verdicts == pooled_verdicts,
        # gates: per-cell verdict parity and the pooled grid paying for
        # itself
        "ok": forked_verdicts == pooled_verdicts and speedup >= 1.3,
    }


def bench_service(cfg: ModelConfig, candidates: list, rounds: int) -> dict:
    """Pooled vs fork-per-batch dispatch on a repeated verification load.

    Both sides run the *same* ``rounds`` batches over the same
    candidates with no query cache, so the only difference is dispatch:
    ``run_portfolio`` pays a fresh fork + base-network encode per task
    per batch, the :class:`WorkerPool` pays it once per worker and then
    serves warm incremental verifiers.  Pool start-up and shutdown are
    inside the pooled timing — the speedup is the amortized one a
    long-lived ``ccmatic serve`` actually delivers.
    """
    from repro.engine.portfolio import (
        _pooled_verify_candidate_task,
        _verify_candidate_task,
        run_portfolio,
    )
    from repro.service import WorkerPool

    precision = Fraction(1, 8)

    def _tasks(fn):
        return [
            (fn, (cfg, precision, cand, False, None, True, None, False))
            for cand in candidates
        ]

    def _verdicts(outcome):
        return [
            outcome.reports[i].result.verified
            for i in range(len(candidates))
        ]

    wait_all = {"accept": lambda _r: False, "wall_time": 300.0}

    forked_verdicts = []
    t0 = time.perf_counter()
    for _ in range(rounds):
        outcome = run_portfolio(_tasks(_verify_candidate_task), **wait_all)
        forked_verdicts.append(_verdicts(outcome))
    forked_s = time.perf_counter() - t0

    pooled_verdicts = []
    t0 = time.perf_counter()
    with WorkerPool(size=len(candidates)) as pool:
        for _ in range(rounds):
            outcome = pool.run_batch(
                _tasks(_pooled_verify_candidate_task), **wait_all
            )
            pooled_verdicts.append(_verdicts(outcome))
        stats = pool.stats.to_json()
    pooled_s = time.perf_counter() - t0

    speedup = forked_s / pooled_s if pooled_s > 0 else float("inf")
    return {
        "rounds": rounds,
        "batch": len(candidates),
        "forked_s": round(forked_s, 4),
        "pooled_s": round(pooled_s, 4),
        "speedup": round(speedup, 2),
        "verdicts_identical": forked_verdicts == pooled_verdicts,
        "pool": stats,
        # gates: verdict parity and the pooled dispatch paying for itself
        "ok": forked_verdicts == pooled_verdicts and speedup >= 1.3,
    }


def bench_resilience(n_jobs: int, budget: int) -> dict:
    """One-at-a-time vs four concurrent executors on a real JobServer.

    Boots two in-process control planes (ephemeral ports, same pool
    size) and pushes the same ``n_jobs`` distinct falsify jobs through
    each: ``executors=1`` serializes them, ``executors=4`` overlaps
    them across the shared pool's fork workers.  Every job must end
    ``done`` and the two sides must produce pairwise identical result
    fingerprints — concurrency is not allowed to change *what* was
    computed, only *when*.

    The throughput gate is hardware-aware: executor concurrency buys
    real process parallelism, so on >= 2 cores the concurrent side must
    be >= 1.5x faster; on a single-core host (CI smoke runners) the
    work serializes on the CPU no matter how it is dispatched, and the
    gate degrades to "concurrency must not collapse throughput"
    (>= 0.8x — catching lease/lock thrash, not claiming parallel wins
    the hardware cannot deliver).
    """
    import asyncio
    import tempfile
    import threading

    from repro.service import JobServer, ServiceClient, ServiceConfig
    from repro.service import falsify_spec

    jobs = [
        falsify_spec("aimd:8", ModelConfig(T=5), budget=budget, seed=seed,
                     exhaustive=True, no_verify=True)
        for seed in range(n_jobs)
    ]

    def _throughput(executors: int) -> tuple[float, list, list]:
        state = tempfile.mkdtemp(prefix=f"bench-resilience-x{executors}-")
        config = ServiceConfig(
            port=0, state_dir=state, pool_size=4, executors=executors,
        )
        server = JobServer(config)
        started = threading.Event()
        info = {}

        def _run():
            async def _main():
                await server.start()
                info["port"] = server.port
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(_main())

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        if not started.wait(120):
            raise RuntimeError("bench server never came up")
        client = ServiceClient(port=info["port"], timeout=600.0)
        t0 = time.perf_counter()
        ids = [client.submit(spec)["job_id"] for spec in jobs]
        states = [client.wait(job_id)["state"] for job_id in ids]
        wall = time.perf_counter() - t0
        fingerprints = [
            client.result(job_id)["fingerprint"]
            for job_id, state in zip(ids, states) if state == "done"
        ]
        client.shutdown()
        thread.join(timeout=120)
        return wall, states, fingerprints

    serial_s, serial_states, serial_fps = _throughput(1)
    concurrent_s, concurrent_states, concurrent_fps = _throughput(4)

    cores = os.cpu_count() or 1
    required = 1.5 if cores >= 2 else 0.8
    speedup = serial_s / concurrent_s if concurrent_s > 0 else float("inf")
    all_done = (
        serial_states == ["done"] * n_jobs
        and concurrent_states == ["done"] * n_jobs
    )
    return {
        "jobs": n_jobs,
        "budget": budget,
        "cores": cores,
        "serial_s": round(serial_s, 4),
        "concurrent_s": round(concurrent_s, 4),
        "speedup": round(speedup, 2),
        "required_speedup": required,
        "all_done": all_done,
        "fingerprints_identical": serial_fps == concurrent_fps,
        "ok": (
            all_done
            and serial_fps == concurrent_fps
            and speedup >= required
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (smaller traces, fewer candidates)",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", metavar="PATH",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--no-compile-pipeline", action="store_true",
        help="run the cache/incremental/portfolio workloads over the raw "
             "encode path (for before/after comparison in CI)",
    )
    parser.add_argument(
        "--append-history", metavar="PATH", default=None,
        help="additionally append a git-sha-stamped summary of this run "
             "to the trajectory file at PATH (e.g. BENCH_engine.json)",
    )
    args = parser.parse_args(argv)

    from repro.obs import trajectory as traj

    if traj.is_trajectory(args.out):
        print(
            f"refusing to overwrite {args.out}: it is a committed benchmark "
            f"trajectory (history), not a single-run report.\n"
            f"Write the report elsewhere (--out report.json) and fold it in "
            f"with --append-history {args.out}.",
            file=sys.stderr,
        )
        return 2

    if args.no_compile_pipeline:
        os.environ[ENV_FLAG] = "1"  # portfolio workers inherit the flag
        set_pipeline_enabled(False)

    if args.quick:
        cfg = ModelConfig(T=5, history=3)
        history, n_cands, budget, rounds = 3, 4, 60.0, 3
    else:
        cfg = ModelConfig(T=5)
        history, n_cands, budget, rounds = 3, 6, 240.0, 4
    candidates = _candidates(history, n_cands)

    report = {
        "bench": "engine",
        "quick": args.quick,
        "T": cfg.T,
        "candidates": n_cands,
        "compile_pipeline": not args.no_compile_pipeline,
    }
    print(f"engine bench (T={cfg.T}, {n_cands} candidates, "
          f"{'quick' if args.quick else 'full'} scale, "
          f"pipeline={'off' if args.no_compile_pipeline else 'on'})")

    report["compile"] = bench_compile(cfg, candidates)
    k = report["compile"]
    print(f"  compile:     median clause reduction="
          f"{k['median_clause_reduction']:.0%} "
          f"solve raw={k['raw_s']}s pipeline={k['pipeline_s']}s "
          f"speedup={k['speedup']}x divergences={k['verdict_divergences']}  "
          f"[{'ok' if k['ok'] else 'FAIL'}]")

    report["cache"] = bench_cache(cfg, candidates)
    c = report["cache"]
    print(f"  cache:       cold={c['cold_s']}s warm={c['warm_s']}s "
          f"speedup={c['speedup']}x  [{'ok' if c['ok'] else 'FAIL'}]")

    report["incremental"] = bench_incremental(cfg, candidates)
    i = report["incremental"]
    print(f"  incremental: fresh={i['fresh_s']}s session={i['incremental_s']}s "
          f"speedup={i['speedup']}x identical={i['verdicts_identical']}  "
          f"[{'ok' if i['ok'] else 'FAIL'}]")

    report["proof"] = bench_proof(cfg, candidates)
    pr = report["proof"]
    print(f"  proof:       plain={pr['plain_s']}s certify={pr['certify_s']}s "
          f"overhead={pr['overhead']}x certified={pr['certified']}/{pr['verified']}  "
          f"[{'ok' if pr['ok'] else 'FAIL'}]")

    report["portfolio"] = bench_portfolio(cfg, budget)
    p = report["portfolio"]
    print(f"  portfolio:   jobs1={p['jobs_1']['wall_s']}s "
          f"jobs4={p['jobs_4']['wall_s']}s identical={p['verdicts_identical']}  "
          f"[{'ok' if p['ok'] else 'FAIL'}]")

    report["service"] = bench_service(cfg, candidates, rounds)
    s = report["service"]
    print(f"  service:     forked={s['forked_s']}s pooled={s['pooled_s']}s "
          f"speedup={s['speedup']}x identical={s['verdicts_identical']}  "
          f"[{'ok' if s['ok'] else 'FAIL'}]")

    report["matrix"] = bench_matrix(cfg, candidates, rounds)
    m = report["matrix"]
    print(f"  matrix:      forked={m['forked_s']}s "
          f"pooled={m['pooled_s']}s speedup={m['speedup']}x "
          f"identical={m['verdicts_identical']}  "
          f"[{'ok' if m['ok'] else 'FAIL'}]")

    report["resilience"] = bench_resilience(
        n_jobs=4 if args.quick else 8,
        budget=150 if args.quick else 250,
    )
    r = report["resilience"]
    print(f"  resilience:  serial={r['serial_s']}s "
          f"concurrent={r['concurrent_s']}s speedup={r['speedup']}x "
          f"(need {r['required_speedup']}x on {r['cores']} core(s)) "
          f"identical={r['fingerprints_identical']}  "
          f"[{'ok' if r['ok'] else 'FAIL'}]")

    report["ok"] = all(
        report[k]["ok"]
        for k in (
            "compile", "cache", "incremental", "proof", "portfolio",
            "service", "matrix", "resilience",
        )
    )
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}  [{'ok' if report['ok'] else 'FAIL'}]")
    if args.append_history:
        entry = traj.append_entry(args.append_history, report)
        print(f"appended {entry['git_sha']} ({len(entry['metrics'])} metrics) "
              f"to {args.append_history}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
