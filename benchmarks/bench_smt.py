"""Microbenchmarks of the SMT substrate (the Z3 replacement).

These calibrate the solver the whole reproduction stands on: pure SAT
(pigeonhole), pure LRA (chained bounds), and the boolean/arithmetic mix
the CCAC encodings produce (max-gadget chains).
"""

import itertools
from fractions import Fraction

import pytest

from repro.smt import And, Or, Real, RealVal, Solver, encode_max, sat, unsat
from repro.smt.sat import SatSolver


def test_sat_pigeonhole(benchmark):
    def run():
        s = SatSolver()
        holes = 5
        var = {}
        for p in range(holes + 1):
            for h in range(holes):
                var[p, h] = s.new_var()
        for p in range(holes + 1):
            s.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(holes + 1), 2):
                s.add_clause([-var[p1, h], -var[p2, h]])
        return s.solve()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is False


def test_lra_chain(benchmark):
    def run():
        s = Solver()
        xs = [Real(f"bm_x{i}") for i in range(40)]
        for a, b in zip(xs, xs[1:]):
            s.add(b >= a + 1)
        s.add(xs[0] >= 0, xs[-1] <= 100)
        return s.check()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is sat


def test_lra_chain_unsat(benchmark):
    def run():
        s = Solver()
        xs = [Real(f"bm_y{i}") for i in range(40)]
        for a, b in zip(xs, xs[1:]):
            s.add(b >= a + 1)
        s.add(xs[0] >= 0, xs[-1] <= 10)
        return s.check()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is unsat


def test_max_gadget_chain(benchmark):
    """The CCAC sender recurrence shape: a chain of max() gadgets."""

    def run():
        s = Solver()
        xs = [Real(f"bm_m{i}") for i in range(25)]
        s.add(xs[0].eq(0))
        for i in range(1, 25):
            s.add(encode_max(xs[i], [xs[i - 1], RealVal(i) - xs[i - 1]]))
        s.add(xs[-1] >= 0)
        return s.check()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is sat


def test_disjunctive_bounds(benchmark):
    """Boolean branching over arithmetic ranges."""

    def run():
        s = Solver()
        xs = [Real(f"bm_d{i}") for i in range(12)]
        total = xs[0]
        for i, v in enumerate(xs):
            s.add(Or(And(v >= 0, v <= 1), And(v >= 10, v <= 11)))
        s.add(sum(xs[1:], xs[0]) >= 55)
        return s.check()

    assert benchmark.pedantic(run, rounds=3, iterations=1) is sat
